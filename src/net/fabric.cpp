#include "net/fabric.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <utility>

#include "sim/parallel.hpp"
#include "util/require.hpp"

namespace ckd::net {

namespace {
/// Round-robin service granularity of the injection port. One MTU where the
/// class defines packets; a 2 KB descriptor slice otherwise (RDMA engines).
std::size_t chunkBytesFor(const XferClass& cls) {
  return std::max<std::size_t>(cls.mtu_bytes ? cls.mtu_bytes : 0, 2048);
}
}  // namespace

Fabric::Fabric(sim::Engine& engine, topo::TopologyPtr topology,
               CostParams params)
    : engine_(engine), topology_(std::move(topology)), params_(std::move(params)) {
  CKD_REQUIRE(topology_ != nullptr, "Fabric requires a topology");
  inject_.resize(static_cast<std::size_t>(topology_->numNodes()));
  ejectFree_.assign(static_cast<std::size_t>(topology_->numNodes()), 0.0);
}

sim::Engine& Fabric::engine() {
  return parallel_ != nullptr ? parallel_->current() : engine_;
}

void Fabric::growTopology() {
  const auto nodes = static_cast<std::size_t>(topology_->numNodes());
  CKD_REQUIRE(nodes >= inject_.size(), "topology shrank under the fabric");
  inject_.resize(nodes);
  ejectFree_.resize(nodes, 0.0);
}

void Fabric::scheduleArrival(int dstPe, int srcPe, sim::Time when,
                             sim::Engine::Action action) {
  if (parallel_ != nullptr) {
    parallel_->atRemote(dstPe, srcPe, when, std::move(action));
    return;
  }
  engine_.at(when, std::move(action));
}

void Fabric::installFaults(const fault::FaultPlan& plan, std::uint64_t seed) {
  CKD_REQUIRE(injector_ == nullptr, "fault plan already installed");
  if (!plan.armed()) return;  // unarmed plan: keep the null-injector fast path
  injector_ =
      std::make_unique<fault::FaultInjector>(plan, seed, engine_.trace());
}

sim::Time Fabric::submit(int srcPe, int dstPe, std::size_t bytes,
                         XferKind kind, DeliverFn onDeliver,
                         std::uint64_t traceId) {
  const fault::MsgClass msgClass =
      kind == XferKind::kControl ? fault::MsgClass::kControl
      : kind == XferKind::kRdma  ? fault::MsgClass::kBulk
                                 : fault::MsgClass::kPacket;
  return submitEx(srcPe, dstPe, bytes, params_.classFor(kind),
                  /*occupiesPorts=*/kind != XferKind::kControl, msgClass,
                  [onDeliver = std::move(onDeliver)](
                      const fault::WireSender::Delivery&) { onDeliver(); },
                  traceId);
}

sim::Time Fabric::submitCustom(int srcPe, int dstPe, std::size_t bytes,
                               const XferClass& cls, bool occupiesPorts,
                               DeliverFn onDeliver, std::uint64_t traceId) {
  // Infer the fault-matching class from how the message uses the ports.
  const fault::MsgClass msgClass =
      !occupiesPorts               ? fault::MsgClass::kControl
      : bytes <= chunkBytesFor(cls) ? fault::MsgClass::kPacket
                                    : fault::MsgClass::kBulk;
  return submitEx(srcPe, dstPe, bytes, cls, occupiesPorts, msgClass,
                  [onDeliver = std::move(onDeliver)](
                      const fault::WireSender::Delivery&) { onDeliver(); },
                  traceId);
}

sim::Time Fabric::sendWire(int srcPe, int dstPe, std::size_t wireBytes,
                           fault::MsgClass cls,
                           fault::WireSender::DeliverFn onDeliver,
                           std::uint64_t traceId) {
  switch (cls) {
    case fault::MsgClass::kBulk:
      return submitEx(srcPe, dstPe, wireBytes, params_.classFor(XferKind::kRdma),
                      /*occupiesPorts=*/true, cls, std::move(onDeliver),
                      traceId);
    case fault::MsgClass::kControl:
      return submitEx(srcPe, dstPe, wireBytes,
                      params_.classFor(XferKind::kControl),
                      /*occupiesPorts=*/false, cls, std::move(onDeliver),
                      traceId);
    default:
      return submitEx(srcPe, dstPe, wireBytes,
                      params_.classFor(XferKind::kPacket),
                      /*occupiesPorts=*/true, fault::MsgClass::kPacket,
                      std::move(onDeliver), traceId);
  }
}

sim::Time Fabric::submitEx(int srcPe, int dstPe, std::size_t bytes,
                           const XferClass& cls, bool occupiesPorts,
                           fault::MsgClass msgClass,
                           fault::WireSender::DeliverFn onDeliver,
                           std::uint64_t traceId) {
  CKD_REQUIRE(srcPe >= 0 && srcPe < numPes(), "source PE out of range");
  CKD_REQUIRE(dstPe >= 0 && dstPe < numPes(), "destination PE out of range");
  CKD_REQUIRE(onDeliver != nullptr, "transfer needs a delivery callback");

  messages_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(bytes, std::memory_order_relaxed);

  // The calling execution context: the submitting PE's shard engine in
  // parallel mode, the single engine otherwise. Source-side events (port
  // chunks, self/intra-node deliveries — shard-local by the node-aligned
  // partition) schedule here; cross-node arrivals go via scheduleArrival.
  sim::Engine& eng = engine();
  const sim::Time now = eng.now();
  const int srcNode = topology_->nodeOf(srcPe);
  const int dstNode = topology_->nodeOf(dstPe);

  // Faults model the wire: self-sends and intra-node memcpys never traverse
  // it and are exempt. The decision draws from the injector RNG in rule
  // order, so the schedule is a pure function of (seed, plan, event order).
  fault::WireFault wf;
  if (injector_ != nullptr && injector_->armed() && srcNode != dstNode)
    wf = injector_->decideWire(now, srcPe, dstPe, bytes, msgClass);

  sim::TraceRecorder& trace = eng.trace();
  trace.recordSpan(now, srcPe, sim::TraceTag::kFabricSubmit,
                   sim::SpanPhase::kInstant, traceId, 0,
                   static_cast<double>(bytes));
  // Stamp the delivery side too, so trace dumps show both ends of a wire.
  // Kept as a raw lambda so the engine constructs the composite — user
  // closure + reliability wrap + this stamp — directly in its event slot.
  // engine() inside resolves to the destination context at delivery time.
  auto deliver = [this, dstPe, bytes, traceId, corrupted = wf.corrupt,
                  onDeliver = std::move(onDeliver)]() mutable {
    sim::Engine& dstEng = engine();
    dstEng.trace().recordSpan(dstEng.now(), dstPe,
                              sim::TraceTag::kFabricDeliver,
                              sim::SpanPhase::kInstant, traceId, 0,
                              static_cast<double>(bytes));
    onDeliver(fault::WireSender::Delivery{corrupted});
  };

  if (srcPe == dstPe) {
    // Self-send: the machine layer short-circuits into a memcpy.
    const sim::Time when = now + params_.self_alpha_us +
                           params_.self_per_byte_us * static_cast<double>(bytes);
    trace.addLayerTime(sim::Layer::kFabric, when - now);
    eng.at(when, std::move(deliver));
    return when;
  }

  if (srcNode == dstNode) {
    const sim::Time when = now + params_.intra_alpha_us +
                           params_.intra_per_byte_us * static_cast<double>(bytes);
    trace.addLayerTime(sim::Layer::kFabric, when - now);
    eng.at(when, std::move(deliver));
    return when;
  }

  const sim::Time wireLatency = cls.alpha_us +
                                params_.per_hop_us * topology_->hops(srcPe, dstPe) +
                                wf.extra_delay_us;
  const sim::Time ser = cls.serialization(bytes);

  // Messages that fit in one wire packet interleave into the injection
  // FIFO's packet stream without meaningfully occupying it (real NIC/torus
  // DMA engines round-robin packets across pending descriptors). They pay
  // their serialization as latency only. Without this, a 100-byte barrier
  // token submitted one microsecond after a 64 KB halo face would stall for
  // the whole face.
  const std::size_t chunkBytes = chunkBytesFor(cls);
  if (!occupiesPorts || bytes <= chunkBytes) {
    const sim::Time when = now + wireLatency + ser;
    if (wf.drop) return when;  // lost on the wire: nothing ever arrives
    trace.addLayerTime(sim::Layer::kFabric, when - now);
    if (wf.duplicate) {
      // Ghost copy arrives a beat later (the action copy clones the closure,
      // including any captured payload image).
      auto ghost = deliver;
      scheduleArrival(dstPe, srcPe, when + std::max<sim::Time>(0.1, cls.alpha_us),
                      std::move(ghost));
    }
    scheduleArrival(dstPe, srcPe, when, std::move(deliver));
    return when;
  }

  if (wf.drop) return now + ser + wireLatency;

  // Diagnostic: CKD_FABRIC_TRACE=1 dumps every bulk submission (T) and
  // delivery (D) to stderr — invaluable when chasing contention questions.
  if (std::getenv("CKD_FABRIC_TRACE") != nullptr)
    std::fprintf(stderr, "T %.2f %d->%d %zu\n", now, srcPe, dstPe, bytes);

  if (wf.duplicate) {
    // The ghost copy of a bulk message skips the injection port (the
    // duplication happens inside the network, past the NIC) and lands a
    // beat after the contention-free arrival estimate.
    auto ghost = deliver;
    scheduleArrival(
        dstPe, srcPe,
        now + ser + wireLatency + std::max<sim::Time>(0.1, cls.alpha_us),
        std::move(ghost));
  }

  // Bulk path: round-robin chunks through the source node's injection
  // port; once fully serialized, cut-through arrival contends for the
  // destination node's ejection bandwidth. The ejection accounting is
  // destination-node state, so it runs in a destination-side event at the
  // cut-through arrival instant — never from the sender's context.
  const int chunks =
      static_cast<int>((bytes + chunkBytes - 1) / chunkBytes);
  Flow flow;
  flow.chunk_ser = ser / chunks;
  flow.chunks_left = chunks;
  const sim::Time flowStart = now;
  // Contention-free wire time is known now; the extra queueing delay is
  // attributed when the ejection event resolves the true delivery time.
  trace.addLayerTime(sim::Layer::kFabric, ser + wireLatency);
  flow.on_serialized = [this, srcPe, dstPe, dstNode, wireLatency, ser,
                        flowStart, onDeliver = std::move(deliver)]() mutable {
    const sim::Time arrival = engine().now() + wireLatency;
    auto eject = [this, dstNode, wireLatency, ser, flowStart,
                  onDeliver = std::move(onDeliver)]() mutable {
      // Egress capacity as a virtual-time accumulator: the drain window of a
      // cut-through flow begins when the flow started arriving (its
      // injection start), not when its tail lands. Balanced traffic (every
      // node both sending and receiving at link rate) therefore pays no
      // ejection penalty, while genuine incast — many sources converging on
      // one node, as in the OpenAtom PairCalculator gather — serializes at
      // the destination's aggregate link rate.
      sim::Engine& dstEng = engine();
      auto& free = ejectFree_[static_cast<std::size_t>(dstNode)];
      const sim::Time drain = ser / params_.eject_links;
      free = std::max(free, flowStart) + drain;
      const sim::Time delivery = std::max(dstEng.now(), free);
      // Queueing beyond the contention-free bound charged at submit time.
      dstEng.trace().addLayerTime(sim::Layer::kFabric,
                                  delivery - (flowStart + ser + wireLatency));
      if (std::getenv("CKD_FABRIC_TRACE") != nullptr)
        std::fprintf(stderr, "D %.2f node=%d ser=%.1f\n", delivery, dstNode,
                     ser);
      dstEng.at(delivery, std::move(onDeliver));
    };
    scheduleArrival(dstPe, srcPe, arrival, std::move(eject));
  };
  inject_[static_cast<std::size_t>(srcNode)].queue.push_back(std::move(flow));
  pumpInject(static_cast<std::size_t>(srcNode));

  // The exact delivery instant is only known once the port drains; report
  // the contention-free lower bound.
  return now + ser + wireLatency;
}

void Fabric::pumpInject(std::size_t node) {
  Port& port = inject_[node];
  while (port.busyServers < params_.inject_links && !port.queue.empty()) {
    ++port.busyServers;
    Flow flow = std::move(port.queue.front());
    port.queue.pop_front();
    const sim::Time chunk = flow.chunk_ser;
    // Chunk completions stay on the submitting context's engine: a node's
    // port state is only ever touched from its own shard (node-aligned
    // partition) or from the serial phase.
    engine().after(chunk, [this, node, flow = std::move(flow)]() mutable {
      Port& p = inject_[node];
      --p.busyServers;
      if (--flow.chunks_left == 0) {
        flow.on_serialized();
      } else {
        p.queue.push_back(std::move(flow));  // round-robin re-queue
      }
      pumpInject(node);
    });
  }
}

std::size_t Fabric::injectQueueLength(int node) const {
  CKD_REQUIRE(node >= 0 && node < topology_->numNodes(), "node out of range");
  const Port& port = inject_[static_cast<std::size_t>(node)];
  return port.queue.size() + static_cast<std::size_t>(port.busyServers);
}

sim::Time Fabric::ejectFreeAt(int node) const {
  CKD_REQUIRE(node >= 0 && node < topology_->numNodes(), "node out of range");
  return ejectFree_[static_cast<std::size_t>(node)];
}

void Fabric::resetStats() {
  messages_.store(0, std::memory_order_relaxed);
  bytes_.store(0, std::memory_order_relaxed);
}

}  // namespace ckd::net
