#pragma once
// Fabric: the timing model that turns "PE s sends B bytes to PE d" into a
// delivery event on the simulation engine.
//
// Resource model:
//  * Each *node* has one injection port and one ejection port (the NIC /
//    torus router FIFO). Messages from co-located PEs serialize through the
//    shared injection port — this reproduces the paper's observation that
//    8-way multicore nodes with a single InfiniBand HCA become
//    bandwidth-limited.
//  * The injection port is a round-robin packet server: concurrent bulk
//    messages interleave at chunk granularity, like a DMA engine
//    round-robining across pending descriptors. A solo message still
//    serializes in exactly serialization(bytes), so single-stream
//    calibration is unaffected, but completion order under contention is
//    fair instead of whole-message FIFO.
//  * Messages that fit in one wire packet, and control-class messages
//    (rendezvous handshakes, PSCW tokens), pay serialization as latency but
//    skip port occupancy entirely.
//  * Intra-node messages cost a memcpy (intra alpha + per-byte); same-PE
//    messages a cheaper in-process memcpy. Neither touches the ports.
//
// The fabric moves no bytes itself; the layers above (src/ib, src/dcmf)
// perform the actual memory writes when the delivery callback fires.
//
// Fault injection: installFaults() arms a fault::FaultInjector, after which
// every inter-node submit consults it and may be dropped, delayed,
// duplicated, or delivered corrupted. The fabric implements
// fault::WireSender, so fault::ReliableLink (the go-back-N layer the verbs /
// DCMF stacks use to survive the injector) transmits through the same ports
// as everything else. With no plan installed the injector pointer stays
// null and every path below is taken verbatim.

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "fault/fault.hpp"
#include "fault/reliable.hpp"
#include "net/cost_params.hpp"
#include "sim/engine.hpp"
#include "topo/topology.hpp"
#include "util/inplace_fn.hpp"

namespace ckd::sim {
class ParallelEngine;
}

namespace ckd::net {

class Fabric : public fault::WireSender {
 public:
  /// Delivery closure. Inline capacity covers the layers' usual captures
  /// (`this` + a MessagePtr or a few scalars); larger ones heap-allocate.
  using DeliverFn = util::InplaceFunction<void(), 64>;

  Fabric(sim::Engine& engine, topo::TopologyPtr topology, CostParams params);

  /// Route all scheduling through a sharded engine: source-side events land
  /// on the calling context's shard, cross-node deliveries ride the
  /// destination shard's ring (canonically ordered — see parallel.hpp).
  /// The shard partition must be node-aligned so that injection-port state,
  /// intra-node transfers, and self-sends stay shard-local.
  void attachParallel(sim::ParallelEngine* parallel) { parallel_ = parallel; }

  /// Engine of the calling execution context (the attached shard engine in
  /// parallel mode, the constructor engine otherwise). Timing reads and
  /// source-side scheduling go through this.
  sim::Engine& engine();
  const topo::Topology& topology() const { return *topology_; }
  const CostParams& params() const { return params_; }
  int numPes() const { return topology_->numPes(); }

  /// Submit a transfer. `onDeliver` runs at the (returned) delivery time.
  /// Returns the modeled delivery time. `traceId` (when nonzero) stamps the
  /// fabric.submit / fabric.deliver trace points with the transfer's causal
  /// chain id.
  sim::Time submit(int srcPe, int dstPe, std::size_t bytes, XferKind kind,
                   DeliverFn onDeliver, std::uint64_t traceId = 0);

  /// Same, with a caller-provided serialization class (protocol stacks such
  /// as the mini-MPI flavors bring their own per-byte/per-packet costs).
  /// `occupiesPorts` == false gives control-message semantics.
  sim::Time submitCustom(int srcPe, int dstPe, std::size_t bytes,
                         const XferClass& cls, bool occupiesPorts,
                         DeliverFn onDeliver, std::uint64_t traceId = 0);

  /// Arm fault injection for this fabric. Call at most once, before traffic
  /// flows; a plan that is not armed() installs nothing (zero overhead).
  void installFaults(const fault::FaultPlan& plan, std::uint64_t seed);

  /// Pick up a topology that grew (elastic scale-out): extend the per-node
  /// injection/ejection port state for the new nodes. Serial-phase only —
  /// no transfer may be in flight to/from a node that does not yet have
  /// port state.
  void growTopology();

  // fault::WireSender: the transmit surface fault::ReliableLink runs over.
  sim::Time sendWire(int srcPe, int dstPe, std::size_t wireBytes,
                     fault::MsgClass cls,
                     fault::WireSender::DeliverFn onDeliver,
                     std::uint64_t traceId = 0) override;
  sim::Engine& wireEngine() override { return engine(); }
  fault::FaultInjector* faults() override { return injector_.get(); }

  /// Bulk messages currently queued or in service at a node's injection
  /// port (for tests/benches).
  std::size_t injectQueueLength(int node) const;
  sim::Time ejectFreeAt(int node) const;

  std::uint64_t messagesSubmitted() const {
    return messages_.load(std::memory_order_relaxed);
  }
  std::uint64_t bytesSubmitted() const {
    return bytes_.load(std::memory_order_relaxed);
  }

  void resetStats();

 private:
  struct Flow {
    sim::Time chunk_ser = 0.0;
    int chunks_left = 0;
    std::function<void()> on_serialized;
  };
  struct Port {
    std::deque<Flow> queue;
    int busyServers = 0;
  };

  /// Common submit path; all public entry points funnel through here so the
  /// fault hooks see every wire message.
  sim::Time submitEx(int srcPe, int dstPe, std::size_t bytes,
                     const XferClass& cls, bool occupiesPorts,
                     fault::MsgClass msgClass,
                     fault::WireSender::DeliverFn onDeliver,
                     std::uint64_t traceId);
  void pumpInject(std::size_t node);
  /// Schedule a cross-node arrival on the destination PE's engine: directly
  /// in single-engine mode, through the destination shard's ring in parallel
  /// mode (srcPe is the canonical ordering key).
  void scheduleArrival(int dstPe, int srcPe, sim::Time when,
                       sim::Engine::Action action);

  sim::Engine& engine_;
  sim::ParallelEngine* parallel_ = nullptr;
  topo::TopologyPtr topology_;
  CostParams params_;
  std::vector<Port> inject_;
  std::vector<sim::Time> ejectFree_;
  std::unique_ptr<fault::FaultInjector> injector_;
  std::atomic<std::uint64_t> messages_{0};
  std::atomic<std::uint64_t> bytes_{0};
};

}  // namespace ckd::net
