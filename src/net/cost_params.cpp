#include "net/cost_params.hpp"

#include "util/require.hpp"

namespace ckd::net {

sim::Time XferClass::serialization(std::size_t bytes) const {
  double t = per_byte_us * static_cast<double>(bytes);
  if (per_packet_us > 0.0) {
    const std::size_t mtu = mtu_bytes ? mtu_bytes : bytes;
    const std::size_t packets = bytes == 0 ? 1 : (bytes + mtu - 1) / mtu;
    t += per_packet_us * static_cast<double>(packets);
  }
  return t;
}

const XferClass& CostParams::classFor(XferKind kind) const {
  switch (kind) {
    case XferKind::kRdma:
      return has_rdma ? rdma : packet;
    case XferKind::kPacket:
      return packet;
    case XferKind::kControl:
      return control;
  }
  CKD_REQUIRE(false, "unknown XferKind");
}

sim::Time CostParams::wireLatencyFloor() const {
  sim::Time floor = rdma.alpha_us;
  if (packet.alpha_us < floor) floor = packet.alpha_us;
  if (control.alpha_us < floor) floor = control.alpha_us;
  CKD_REQUIRE(floor > 0.0, "cost preset has a zero wire-latency floor");
  return floor;
}

// ---------------------------------------------------------------------------
// NCSA Abe (InfiniBand). Fit targets, one-way, from Table 1:
//   CkDirect put (pure RDMA path):  100 B -> 6.19 us, 500 KB -> 647.2 us
//     => rdma.alpha ~ 5.2 us, rdma.per_byte ~ (647.2 - 6.2)/5e5 = 1.28 ns/B
//     (the remaining ~1 us of the 6.19 is software: put issue + poll detect,
//      charged by the CkDirect layer, not here).
//   Default Charm++ eager/packet path:  slope between 1 KB and 20 KB
//     ~ (96.2 - 25.1)/2 / 19e3 = 1.87 ns/B -> packet.per_byte 1.9 ns/B.
// ---------------------------------------------------------------------------
CostParams abeParams() {
  CostParams p;
  p.name = "abe";
  p.rdma = XferClass{/*alpha*/ 5.0, /*per_byte*/ 1.282e-3,
                     /*per_packet*/ 0.0, /*mtu*/ 0};
  p.packet = XferClass{/*alpha*/ 5.0, /*per_byte*/ 1.80e-3,
                       /*per_packet*/ 0.65, /*mtu*/ 4096};
  p.control = XferClass{/*alpha*/ 5.0, /*per_byte*/ 2.0e-3,
                        /*per_packet*/ 0.0, /*mtu*/ 0};
  p.per_hop_us = 0.05;
  p.intra_alpha_us = 0.6;
  p.intra_per_byte_us = 0.35e-3;  // ~2.9 GB/s memcpy through shared pages
  p.self_alpha_us = 0.2;
  p.self_per_byte_us = 0.18e-3;  // ~5.5 GB/s in-process memcpy
  p.has_rdma = true;
  return p;
}

// NCSA T3 (Woodcrest + InfiniBand): same HCA generation as Abe. The paper's
// stencil experiment ran here; latency is a touch higher (older switches).
CostParams t3Params() {
  CostParams p = abeParams();
  p.name = "t3";
  p.rdma.alpha_us = 5.6;
  p.packet.alpha_us = 5.6;
  p.control.alpha_us = 5.6;
  return p;
}

// ---------------------------------------------------------------------------
// ANL Surveyor (Blue Gene/P). Fit targets, one-way, from Table 2:
//   CkDirect (DCMF two-sided, not zero-copy):
//     100 B -> 2.57 us, 500 KB -> 1338.5 us
//     => packet.alpha ~ 1.9 us (the paper cites DCMF one-way latency 1.9 us),
//        per_byte ~ (1338.5 - 2.57)/5e5 = 2.67 ns/B.
//   No RDMA cut-over existed on Surveyor ("the supporting rendezvous
//   protocol was not installed"), so has_rdma = false and the rdma class
//   aliases the packet class.
// ---------------------------------------------------------------------------
CostParams surveyorParams() {
  CostParams p;
  p.name = "surveyor";
  p.packet = XferClass{/*alpha*/ 1.9, /*per_byte*/ 2.62e-3,
                       /*per_packet*/ 0.012, /*mtu*/ 240};
  p.rdma = p.packet;  // unused while has_rdma == false
  p.control = XferClass{/*alpha*/ 1.9, /*per_byte*/ 2.62e-3,
                        /*per_packet*/ 0.0, /*mtu*/ 0};
  p.per_hop_us = 0.04;  // BG/P torus router hop
  p.inject_links = 4;   // six torus links, effective four under imbalance
  p.eject_links = 4;
  p.intra_alpha_us = 0.5;
  p.intra_per_byte_us = 0.9e-3;  // VN-mode PEs talk through the torus loopback
  p.self_alpha_us = 0.2;
  p.self_per_byte_us = 0.37e-3;  // ~2.7 GB/s in-process memcpy
  p.has_rdma = false;
  return p;
}

}  // namespace ckd::net
