#pragma once
// Wire-level cost parameters for the simulated interconnects.
//
// The constants are fitted to the paper's pingpong tables (Table 1: NCSA Abe
// InfiniBand; Table 2: ANL Surveyor Blue Gene/P); the derivations are
// documented next to each preset in cost_params.cpp and in EXPERIMENTS.md.
// All times are microseconds, all sizes bytes.

#include <cstddef>
#include <string>

#include "sim/time.hpp"

namespace ckd::net {

/// One class of wire transfer (how bytes get serialized onto the fabric).
struct XferClass {
  /// First-bit latency, node to node, excluding per-hop cost.
  sim::Time alpha_us = 0.0;
  /// Serialization cost per payload byte.
  double per_byte_us = 0.0;
  /// Fixed cost per packet (header processing, DMA descriptor, ...).
  sim::Time per_packet_us = 0.0;
  /// Packet size the protocol chops messages into. 0 = single packet.
  std::size_t mtu_bytes = 0;

  /// Pure serialization time for `bytes` of payload.
  sim::Time serialization(std::size_t bytes) const;
};

enum class XferKind {
  kRdma,     ///< zero-copy DMA path (IB RDMA write / read)
  kPacket,   ///< two-sided packetized path (eager protocol, DCMF send)
  kControl,  ///< tiny control messages (rendezvous handshakes, PSCW)
};

struct CostParams {
  std::string name;

  XferClass rdma;
  XferClass packet;
  XferClass control;

  /// Router/switch traversal cost per hop (applies to every class).
  sim::Time per_hop_us = 0.0;

  /// Parallel injection/ejection channels per node. One for a single-HCA
  /// InfiniBand node; a BG/P torus node drives six links (we use an
  /// effective four to account for direction imbalance under
  /// nearest-neighbor traffic).
  int inject_links = 1;
  int eject_links = 1;

  /// Intra-node (shared memory, PE to PE) transfer: alpha + per-byte rate.
  sim::Time intra_alpha_us = 0.0;
  double intra_per_byte_us = 0.0;

  /// Same-PE (same address space) transfer: the machine layer short-circuits
  /// a self-send into a plain memcpy.
  sim::Time self_alpha_us = 0.0;
  double self_per_byte_us = 0.0;

  /// Whether the machine supports true one-sided RDMA. Blue Gene/P, per the
  /// paper, did not have the rendezvous/one-sided path installed; its
  /// "rdma" class falls back to the packet class at the fabric level.
  bool has_rdma = true;

  const XferClass& classFor(XferKind kind) const;

  /// Minimum node-to-node wire latency over every transfer class: no
  /// cross-node arrival can land sooner than this after its send instant
  /// (alphas exclude per-hop, serialization, and contention costs, all
  /// non-negative). This is the conservative lookahead bound the sharded
  /// engine uses — shards only exchange events through the wire, so a
  /// window of this width can never miss a cross-shard arrival.
  sim::Time wireLatencyFloor() const;
};

/// NCSA Abe: dual-socket quad-core Clovertown nodes, one IB HCA per node.
CostParams abeParams();

/// NCSA T3: dual-socket dual-core Woodcrest nodes, InfiniBand.
/// Same interconnect family as Abe; slightly higher latency per the paper's
/// "faster processors with a higher latency interconnect" remark.
CostParams t3Params();

/// ANL Surveyor: Blue Gene/P, DCMF messaging, 3-D torus, no RDMA cut-over.
CostParams surveyorParams();

}  // namespace ckd::net
