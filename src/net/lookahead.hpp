#pragma once
// Per-shard-pair conservative lookahead floors for the sharded engine.
//
// The parallel engine's single global window width is the machine-wide wire
// latency floor — correct, but pessimal: two shards whose nodes can only
// reach each other through the spine of a fat tree are bounded by a much
// larger floor than two shards under one leaf switch. This module derives a
// shards x shards matrix L where L[s][d] lower-bounds the wire latency of
// any message a PE of shard s can put on the fabric toward a PE of shard d:
//
//     L[s][d] = alpha_floor + per_hop_us * minHops(nodes(s), nodes(d))
//
// with minHops answered in O(1) by topo::Topology::minHopsBetween over each
// shard's [min node, max node] range (a conservative superset of the nodes
// it actually owns, so interleaved PE->shard maps stay sound). Diagonal
// entries are +infinity: intra-shard traffic never crosses the shard
// boundary, so it imposes no cross-shard lookahead constraint — the engine's
// min-plus closure re-derives finite self-influence from round trips through
// other shards (DESIGN.md §2g).

#include <vector>

#include "net/cost_params.hpp"
#include "sim/time.hpp"
#include "topo/topology.hpp"

namespace ckd::net {

/// Build the shards x shards lookahead floor matrix (row-major,
/// `matrix[s * nShards + d]`). `shardOfPe[pe]` maps every PE to its shard;
/// PEs of one node must never split across shards (the engine's partition
/// contract). Every finite entry is >= params.wireLatencyFloor().
std::vector<sim::Time> shardLookaheadMatrix(const topo::Topology& topology,
                                            const CostParams& params,
                                            const std::vector<int>& shardOfPe,
                                            int nShards);

}  // namespace ckd::net
