#include "ckdirect/manager_ib.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/require.hpp"

namespace ckd::direct {

IbManager::IbManager(charm::Runtime& rts)
    : rts_(rts), verbs_(rts.ibVerbs()) {
  CKD_REQUIRE(rts.numPes() < (1 << (31 - kIdxBits)),
              "too many PEs for the CkDirect handle encoding");
  byPe_.resize(static_cast<std::size_t>(rts.numPes()));
  pollQueue_.resize(static_cast<std::size_t>(rts.numPes()));
  hookInstalled_.assign(static_cast<std::size_t>(rts.numPes()), false);
  rts_.setReestablishHook([this]() { reestablish(); });
  rts_.setGrowHook([this]() { onPesGrown(); });
}

void IbManager::onPesGrown() {
  CKD_REQUIRE(rts_.numPes() < (1 << (31 - kIdxBits)),
              "too many PEs for the CkDirect handle encoding");
  byPe_.resize(static_cast<std::size_t>(rts_.numPes()));
  pollQueue_.resize(static_cast<std::size_t>(rts_.numPes()));
  hookInstalled_.resize(static_cast<std::size_t>(rts_.numPes()), false);
}

IbManager::Channel& IbManager::channel(std::int32_t id) {
  const std::int32_t pe = id >> kIdxBits;
  const std::int32_t idx = id & ((1 << kIdxBits) - 1);
  CKD_REQUIRE(id >= 0 && pe < static_cast<std::int32_t>(byPe_.size()) &&
                  byPe_[static_cast<std::size_t>(pe)] != nullptr,
              "unknown CkDirect handle");
  PeChannels& table = *byPe_[static_cast<std::size_t>(pe)];
  CKD_REQUIRE(idx < table.count.load(std::memory_order_acquire),
              "unknown CkDirect handle");
  return table.chunks[idx / PeChannels::kChunkSize].load(
      std::memory_order_acquire)[idx % PeChannels::kChunkSize];
}

const IbManager::Channel& IbManager::channel(std::int32_t id) const {
  return const_cast<IbManager*>(this)->channel(id);
}

namespace {
/// The sentinel lives in the last 8 bytes of the LAST block: RC in-order
/// delivery guarantees every earlier block has landed when it changes.
std::size_t sentinelOffset(std::size_t blockBytes, std::size_t strideBytes,
                           int blockCount) {
  return static_cast<std::size_t>(blockCount - 1) * strideBytes + blockBytes -
         sizeof(std::uint64_t);
}
}  // namespace

std::uint64_t IbManager::readSentinel(const Channel& ch) const {
  std::uint64_t value;
  std::memcpy(&value,
              ch.recvBuffer +
                  sentinelOffset(ch.blockBytes, ch.strideBytes, ch.blockCount),
              sizeof(value));
  return value;
}

void IbManager::writeSentinel(Channel& ch) {
  std::memcpy(ch.recvBuffer +
                  sentinelOffset(ch.blockBytes, ch.strideBytes, ch.blockCount),
              &ch.oob, sizeof(ch.oob));
}

std::int32_t IbManager::createHandle(int receiverPe, void* buffer,
                                     std::size_t bytes, std::uint64_t oob,
                                     Callback callback) {
  return createStridedHandle(receiverPe, buffer, bytes, bytes, 1, oob,
                             std::move(callback));
}

std::int32_t IbManager::createStridedHandle(int receiverPe, void* base,
                                            std::size_t blockBytes,
                                            std::size_t strideBytes,
                                            int blockCount, std::uint64_t oob,
                                            Callback callback) {
  CKD_REQUIRE(base != nullptr, "CkDirect receive buffer is null");
  CKD_REQUIRE(blockBytes >= sizeof(std::uint64_t),
              "CkDirect blocks must hold at least the 8-byte sentinel");
  CKD_REQUIRE(blockCount >= 1, "strided channel needs at least one block");
  CKD_REQUIRE(blockCount == 1 || strideBytes >= blockBytes,
              "blocks may not overlap");
  CKD_REQUIRE(callback != nullptr, "CkDirect requires an arrival callback");

  Channel ch;
  ch.recvPe = receiverPe;
  ch.recvBuffer = static_cast<std::byte*>(base);
  ch.blockBytes = blockBytes;
  ch.strideBytes = strideBytes;
  ch.blockCount = blockCount;
  ch.bytes = blockBytes * static_cast<std::size_t>(blockCount);
  ch.oob = oob;
  ch.callback = std::move(callback);
  // Registration with the verbs layer covers the whole strided span: the
  // HCA may now write anywhere inside it remotely.
  const std::size_t span =
      static_cast<std::size_t>(blockCount - 1) * strideBytes + blockBytes;
  ch.recvRegion = verbs_.registerMemory(receiverPe, base, span);
  ch.marked = true;
  writeSentinel(ch);

  // Runs in the receiver's context, so per-PE creation order — and with it
  // the minted handle id — does not depend on the shard partition.
  if (byPe_[static_cast<std::size_t>(receiverPe)] == nullptr)
    byPe_[static_cast<std::size_t>(receiverPe)] = std::make_unique<PeChannels>();
  PeChannels& table = *byPe_[static_cast<std::size_t>(receiverPe)];
  const std::int32_t idx = table.count.load(std::memory_order_relaxed);
  CKD_REQUIRE(idx < PeChannels::kChunkSize * PeChannels::kMaxChunks,
              "too many CkDirect channels on one PE");
  Channel* chunk =
      table.chunks[idx / PeChannels::kChunkSize].load(std::memory_order_relaxed);
  if (chunk == nullptr) {
    chunk = new Channel[PeChannels::kChunkSize];
    table.chunks[idx / PeChannels::kChunkSize].store(chunk,
                                                     std::memory_order_release);
  }
  chunk[idx % PeChannels::kChunkSize] = std::move(ch);
  table.count.store(idx + 1, std::memory_order_release);
  const std::int32_t id = makeId(receiverPe, idx);

  // Enter the polling queue immediately (CkDirect_createHandle semantics).
  chunk[idx % PeChannels::kChunkSize].inPollQueue = true;
  pollQueue_[static_cast<std::size_t>(receiverPe)].push_back(id);
  ensurePollHook(receiverPe);
  return id;
}

void IbManager::ensurePollHook(int pe) {
  if (hookInstalled_[static_cast<std::size_t>(pe)]) return;
  hookInstalled_[static_cast<std::size_t>(pe)] = true;
  rts_.scheduler(pe).setPollHook([this, pe] { pollScan(pe); });
}

void IbManager::assocLocal(std::int32_t handle, int senderPe,
                           const void* sendBuffer) {
  Channel& ch = channel(handle);
  CKD_REQUIRE(sendBuffer != nullptr, "CkDirect send buffer is null");
  CKD_REQUIRE(ch.sendPe < 0, "handle already associated with a sender");
  ch.sendPe = senderPe;
  ch.sendBuffer = static_cast<const std::byte*>(sendBuffer);
  ch.sendRegion = verbs_.registerMemory(
      senderPe, const_cast<std::byte*>(ch.sendBuffer), ch.bytes);
  ch.qp = verbs_.connect(senderPe, ch.recvPe);
}

bool IbManager::faultsArmed() const {
  return rts_.fabric().faults() != nullptr;
}

void IbManager::put(std::int32_t handle) {
  Channel& ch = channel(handle);
  CKD_REQUIRE(ch.sendPe >= 0,
              "CkDirect_put before CkDirect_assocLocal on this handle");
  puts_.fetch_add(1, std::memory_order_relaxed);

  // Sender-side software cost: one RDMA descriptor per destination block,
  // no message allocation, no header (§3's explanation of the small-message
  // win).
  charm::Scheduler& sender = rts_.scheduler(ch.sendPe);
  sender.chargeAs(sim::Layer::kCkDirect,
                  rts_.costs().put_issue_us +
                      0.05 * (ch.blockCount - 1));  // extra descriptors
  const sim::Time issue = sender.currentTime();
  // One chain per logical put; transparent retries re-use it (N attempts,
  // one chain). The parent is whatever handler called CkDirect_put. The id
  // is minted against the sending PE so it is partition-independent under
  // --shards (mintIdFor falls back to the global stream otherwise).
  ch.activeTraceId = rts_.engine().trace().mintIdFor(ch.sendPe);
  ch.activeParentId = rts_.engine().trace().context();
  ch.activePutAt = -1.0;  // fresh logical put, fresh latency clock

  const std::uint32_t epoch = epoch_;
  rts_.schedAt(ch.sendPe, issue, [this, handle, epoch]() {
    if (epoch != epoch_) return;  // put was rolled back by a restore
    issueWrites(handle);
  });
}

void IbManager::issueWrites(std::int32_t handle) {
  Channel& ch = channel(handle);
  // Receiver (or sender) died mid-iteration: drop the put silently. The
  // rollback rewinds the sender past this point and re-drives it; posting
  // would abort on the invalidated remote region.
  if (!rts_.peAlive(ch.recvPe) || !rts_.peAlive(ch.sendPe)) return;
  rts_.engine().trace().recordSpan(
      rts_.engine().now(), ch.sendPe, sim::TraceTag::kDirectPut,
      sim::SpanPhase::kBegin, ch.activeTraceId, ch.activeParentId,
      static_cast<double>(ch.bytes), handle);
  // First issue of this logical put starts the streaming latency clock;
  // transparent retries re-enter here and must not restart it.
  if (ch.activePutAt < 0.0) ch.activePutAt = rts_.engine().now();
  // One RDMA write per destination block (a scatter put issues one
  // descriptor per contiguous run). RC in-order delivery means the last
  // block — which carries the sentinel — lands last, so detection still
  // implies the whole strided payload is in place.
  const bool armed = faultsArmed();
  for (int b = 0; b < ch.blockCount; ++b) {
    ib::IbVerbs::RdmaWrite write;
    write.qp = ch.qp;
    write.local_addr = ch.sendBuffer + static_cast<std::size_t>(b) * ch.blockBytes;
    write.local_region = ch.sendRegion;
    write.remote_addr =
        ch.recvBuffer + static_cast<std::size_t>(b) * ch.strideBytes;
    write.remote_region = ch.recvRegion;
    write.bytes = ch.blockBytes;
    write.trace_id = ch.activeTraceId;
    if (b == ch.blockCount - 1)
      write.on_remote_delivered = [this, handle]() { onDelivered(handle); };
    if (armed)
      write.on_error = [this, handle](fault::WcStatus status) {
        onPutError(handle, status);
      };
    verbs_.postRdmaWrite(std::move(write));
  }
}

void IbManager::onPutError(std::int32_t handle, fault::WcStatus status) {
  Channel& ch = channel(handle);
  // A failed put flushes every block write on the QP with an error
  // completion; the first one schedules the recovery, the rest fold in.
  if (ch.errorPending) return;
  ch.errorPending = true;
  const fault::ReliabilityParams& rel = rts_.fabric().faults()->plan().rel;
  if (ch.putAttempts >= rel.app_retry_budget) {
    // Transparent recovery exhausted: surface the error completion to the
    // application on the sender PE (costed like an ordinary callback).
    CKD_REQUIRE(ch.onError != nullptr,
                "CkDirect put failed permanently with no error callback");
    verbs_.resetQp(ch.qp);
    rts_.scheduler(ch.sendPe).enqueueSystemWork(
        rts_.costs().callback_overhead_us,
        [this, handle, status]() {
          Channel& c = channel(handle);
          c.errorPending = false;
          c.putAttempts = 0;
          c.onError(status);
        },
        sim::Layer::kCkDirect);
    return;
  }
  ++ch.putAttempts;
  putRetries_.fetch_add(1, std::memory_order_relaxed);
  // Recover the QP (fresh PSN) and re-issue the whole put after the base
  // timeout. RDMA rewrites of the same bytes are idempotent, so blocks that
  // did land are simply written again.
  verbs_.resetQp(ch.qp);
  const std::uint32_t epoch = epoch_;
  rts_.engine().after(rel.timeout_us, [this, handle, epoch]() {
    if (epoch != epoch_) return;  // retry was rolled back by a restore
    Channel& c = channel(handle);
    c.errorPending = false;
    issueWrites(handle);
  });
}

void IbManager::onDelivered(std::int32_t id) {
  Channel& ch = channel(id);
  ch.putAttempts = 0;
  if (!ch.marked) {
    // With faults armed, a put recovered after "retry exceeded" can deliver
    // a second copy of data whose first copy actually landed (only the acks
    // were lost). The rewrite is byte-identical, so ignore the repeat.
    // Without faults a landing on an unmarked channel is an application
    // synchronization bug: the real system would have overwritten live data.
    CKD_REQUIRE(faultsArmed(),
                "CkDirect put landed before the receiver marked the channel "
                "ready — application synchronization bug");
    return;
  }
  ch.marked = false;
  if (ch.inPollQueue) {
    // Model: an idle poll loop notices after poll_detect_latency; a busy PE
    // notices at its next pump anyway.
    const sim::Time detect = rts_.costs().poll_detect_latency_us;
    // When the receiver is idle, that detection gap is genuine CkDirect
    // time (the poll loop spinning); a busy PE overlaps it with other work.
    if (rts_.processor(ch.recvPe).freeAt() <= rts_.engine().now())
      rts_.engine().trace().addLayerTime(sim::Layer::kCkDirect, detect);
    rts_.scheduler(ch.recvPe).poke(detect);
  }
  // else: detection deferred until the receiver calls readyPollQ.
}

void IbManager::pollScan(int pe) {
  auto& queue = pollQueue_[static_cast<std::size_t>(pe)];
  if (queue.empty()) return;
  scans_.fetch_add(1, std::memory_order_relaxed);
  charm::Scheduler& sched = rts_.scheduler(pe);
  sim::TraceRecorder& trace = rts_.engine().trace();
  trace.recordLazy(rts_.engine().now(), pe, sim::TraceTag::kDirectPollScan,
                   [&queue] { return static_cast<double>(queue.size()); });
  trace.observePollQueue(queue.size());
  sched.charge(rts_.costs().poll_per_handle_us *
               static_cast<double>(queue.size()));

  // Swap the queue out before scanning: callbacks may re-arm handles
  // (readyPollQ) and push onto the live queue.
  std::vector<std::int32_t> scan;
  scan.swap(queue);
  for (const std::int32_t id : scan) {
    Channel& ch = channel(id);
    if (readSentinel(ch) == ch.oob) {
      queue.push_back(id);  // still pending
      continue;
    }
    ch.inPollQueue = false;
    ch.detected = true;
    callbacks_.fetch_add(1, std::memory_order_relaxed);
    // Timestamps use the context clock (currentTime reflects the poll +
    // callback charges), so the detect -> callback gap is the modeled
    // handler overhead, not zero.
    trace.recordSpan(sched.currentTime(), pe, sim::TraceTag::kDirectSentinelHit,
                     sim::SpanPhase::kInstant, ch.activeTraceId, 0, 0.0, id);
    sched.charge(rts_.costs().callback_overhead_us);
    trace.recordSpan(sched.currentTime(), pe, sim::TraceTag::kDirectCallback,
                     sim::SpanPhase::kEnd, ch.activeTraceId, ch.activeParentId,
                     0.0, id);
    // Streaming put latency: first write issue -> callback completion,
    // matching the kDirectPut/kDirectCallback causal chain exactly.
    if (ch.activePutAt >= 0.0) {
      rts_.engine().metrics().record(obs::Slo::kPut,
                                     sched.currentTime() - ch.activePutAt);
      ch.activePutAt = -1.0;
    }
    // Puts issued by the callback are caused by this arrival: expose the
    // put's chain id as the ambient context for the callback body.
    const std::uint64_t prevCtx = trace.context();
    trace.setContext(ch.activeTraceId);
    ch.callback();
    trace.setContext(prevCtx);
  }
}

void IbManager::ready(std::int32_t handle) {
  readyMark(handle);
  readyPollQ(handle);
}

void IbManager::readyMark(std::int32_t handle) {
  Channel& ch = channel(handle);
  CKD_REQUIRE(!ch.marked || readSentinel(ch) == ch.oob,
              "readyMark on a channel whose data has not been consumed");
  ch.marked = true;
  ch.detected = false;
  writeSentinel(ch);
  rts_.engine().trace().record(rts_.engine().now(), ch.recvPe,
                               sim::TraceTag::kDirectReady);
}

void IbManager::readyPollQ(std::int32_t handle) {
  Channel& ch = channel(handle);
  if (ch.inPollQueue) return;
  // "...if new data has not already been received for that handle" (§2.1):
  // a channel whose data was received but not yet consumed/re-marked must
  // not resume polling, or its stale payload would fire the callback again.
  if (ch.detected) return;
  ch.inPollQueue = true;
  pollQueue_[static_cast<std::size_t>(ch.recvPe)].push_back(handle);
  // If data already landed undetected, make sure a pump notices it promptly.
  if (readSentinel(ch) != ch.oob)
    rts_.scheduler(ch.recvPe).poke(rts_.costs().poll_detect_latency_us);
}

void IbManager::setErrorCallback(std::int32_t handle,
                                 PutErrorCallback callback) {
  channel(handle).onError = std::move(callback);
}

void IbManager::rehome(std::int32_t handle, int newRecvPe) {
  Channel& ch = channel(handle);
  CKD_REQUIRE(newRecvPe >= 0 && newRecvPe < rts_.numPes(),
              "rehome target PE out of range");
  if (ch.recvPe == newRecvPe) return;
  // Migrations happen at reduction cuts, where the iteration discipline
  // CkDirect requires guarantees the channel is idle: consumed, re-armed,
  // nothing on the wire. Moving a live channel would strand in-flight data.
  CKD_REQUIRE(ch.marked && !ch.detected,
              "rehome on a channel with unconsumed or in-flight data");
  const int oldPe = ch.recvPe;
  if (ch.inPollQueue) {
    auto& q = pollQueue_[static_cast<std::size_t>(oldPe)];
    q.erase(std::remove(q.begin(), q.end(), handle), q.end());
  }
  // Re-pin the receive span under the new PE's identity. The buffer
  // addresses are unchanged — the element object itself does not move in
  // memory, only its simulated home — so this is a pure re-registration.
  if (verbs_.regionValid(ch.recvRegion)) verbs_.deregisterMemory(ch.recvRegion);
  const std::size_t span =
      static_cast<std::size_t>(ch.blockCount - 1) * ch.strideBytes +
      ch.blockBytes;
  ch.recvPe = newRecvPe;
  ch.recvRegion = verbs_.registerMemory(newRecvPe, ch.recvBuffer, span);
  if (ch.sendPe >= 0) ch.qp = verbs_.connect(ch.sendPe, newRecvPe);
  writeSentinel(ch);
  if (ch.inPollQueue)
    pollQueue_[static_cast<std::size_t>(newRecvPe)].push_back(handle);
  ensurePollHook(newRecvPe);
  // The re-handshake (rkey exchange + QP transition) costs work at both
  // endpoints, like the original createHandle/assocLocal pair.
  rts_.scheduler(newRecvPe).enqueueSystemWork(
      rts_.costs().callback_overhead_us, []() {}, sim::Layer::kCkDirect);
  if (ch.sendPe >= 0)
    rts_.scheduler(ch.sendPe).enqueueSystemWork(
        rts_.costs().callback_overhead_us, []() {}, sim::Layer::kCkDirect);
}

std::size_t IbManager::pollQueueLength(int pe) const {
  CKD_REQUIRE(pe >= 0 && pe < rts_.numPes(), "PE out of range");
  return pollQueue_[static_cast<std::size_t>(pe)].size();
}

void IbManager::reestablish() {
  // Global rollback just restored every element to a reduction-cut state,
  // where (by the application iteration discipline CkDirect requires) every
  // channel is idle: data consumed, sentinel re-armed, polling. Re-run the
  // createHandle/assocLocal side effects under the new epoch.
  ++epoch_;
  for (auto& queue : pollQueue_) queue.clear();
  // PE-major, ordinal-minor sweep: deterministic and partition-independent
  // (reestablish runs in a serial phase, so plain loads are fine).
  for (std::size_t pe = 0; pe < byPe_.size(); ++pe) {
    if (byPe_[pe] == nullptr) continue;
    const std::int32_t n = byPe_[pe]->count.load(std::memory_order_relaxed);
    for (std::int32_t idx = 0; idx < n; ++idx) {
      const std::int32_t id = makeId(static_cast<std::int32_t>(pe), idx);
      Channel& ch = channel(id);
      // Crash invalidated the victim's pinned regions; buffer addresses are
      // stable across the restore, so re-registration is a lookup-free redo
      // of the original handshake.
      if (!verbs_.regionValid(ch.recvRegion)) {
        const std::size_t span =
            static_cast<std::size_t>(ch.blockCount - 1) * ch.strideBytes +
            ch.blockBytes;
        ch.recvRegion = verbs_.registerMemory(ch.recvPe, ch.recvBuffer, span);
      }
      if (ch.sendPe >= 0 && !verbs_.regionValid(ch.sendRegion))
        ch.sendRegion = verbs_.registerMemory(
            ch.sendPe, const_cast<std::byte*>(ch.sendBuffer), ch.bytes);
      if (ch.qp != ib::kInvalidQp) verbs_.resetQp(ch.qp);
      ch.marked = true;
      ch.detected = false;
      ch.putAttempts = 0;
      ch.errorPending = false;
      writeSentinel(ch);
      ch.inPollQueue = true;
      pollQueue_[static_cast<std::size_t>(ch.recvPe)].push_back(id);
      // Rehomed channels may poll on a PE that never created one.
      ensurePollHook(ch.recvPe);
      // The re-handshake costs work on both endpoints, like the original
      // createHandle/assocLocal calls.
      rts_.scheduler(ch.recvPe).enqueueSystemWork(
          rts_.costs().callback_overhead_us, []() {}, sim::Layer::kCkDirect);
      if (ch.sendPe >= 0)
        rts_.scheduler(ch.sendPe).enqueueSystemWork(
            rts_.costs().callback_overhead_us, []() {}, sim::Layer::kCkDirect);
    }
  }
}

}  // namespace ckd::direct
