#pragma once
// CkDirect — the paper's contribution (§2): a persistent, one-way, one-sided
// memory-to-memory communication channel between two chares.
//
// Usage protocol (Figure 1):
//   receiver:  Handle h = createHandle(rts, recvPe, buf, n, oob, callback);
//              ... ship `h` to the sender (e.g. inside a setup message) ...
//   sender:    assocLocal(h, sendPe, srcBuf);
//   each iteration:
//     sender:    put(h);                     // data lands directly in `buf`
//     receiver:  <callback fires when the data has fully arrived>
//                ... consume buf ...
//                ready(h);                   // or readyMark + readyPollQ
//
// No synchronization happens anywhere in this API — correctness relies on
// the application's own iteration structure, exactly as the paper requires.
// The simulator *checks* that discipline: a put whose data lands before the
// receiver re-marked the channel aborts with a diagnostic, because the real
// system would silently overwrite live data.
//
// Two implementations exist behind Manager:
//  * InfiniBand (§2.1): RDMA write + per-PE polling queue; arrival detected
//    by the out-of-band sentinel in the last 8 bytes of the buffer.
//  * Blue Gene/P (§2.2): DCMF two-sided send carrying the receive context
//    in a 2-quad-word Info header; the callback fires from the DCMF
//    completion and the ready calls are no-ops.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "charm/runtime.hpp"
#include "fault/reliable.hpp"

namespace ckd::direct {

using Callback = std::function<void()>;

/// Invoked on the sender PE when a put keeps failing past the link retry
/// budget AND the manager's own re-put budget (faults only). The channel is
/// healthy again when this fires; the application decides whether to re-put
/// or give up.
using PutErrorCallback = std::function<void(fault::WcStatus)>;

/// Opaque channel handle. Trivially copyable so applications can ship it to
/// the sender inside an ordinary message payload.
struct Handle {
  charm::Runtime* rts = nullptr;
  std::int32_t id = -1;

  bool valid() const { return rts != nullptr && id >= 0; }
};

/// Backend interface; obtain via Manager::of(runtime).
class Manager {
 public:
  virtual ~Manager() = default;

  /// Fetch (creating on first use) the CkDirect manager for a runtime. The
  /// concrete implementation matches the runtime's machine layer.
  static Manager& of(charm::Runtime& rts);

  /// Non-creating lookup: nullptr when the runtime has no CkDirect manager
  /// yet. Observers (profiling, tests) must use this so inspection never
  /// mutates the system under observation.
  static Manager* peek(charm::Runtime& rts);

  virtual std::int32_t createHandle(int receiverPe, void* buffer,
                                    std::size_t bytes, std::uint64_t oob,
                                    Callback callback) = 0;
  /// §6 extension: a channel whose destination is `blockCount` blocks of
  /// `blockBytes`, spaced `strideBytes` apart starting at `base` — e.g.
  /// consecutive rows inside a larger matrix. The sender side stays
  /// contiguous (blockCount * blockBytes). Arrival fires once, after the
  /// last block has landed.
  virtual std::int32_t createStridedHandle(int receiverPe, void* base,
                                           std::size_t blockBytes,
                                           std::size_t strideBytes,
                                           int blockCount, std::uint64_t oob,
                                           Callback callback) = 0;
  virtual void assocLocal(std::int32_t handle, int senderPe,
                          const void* sendBuffer) = 0;
  virtual void put(std::int32_t handle) = 0;
  virtual void ready(std::int32_t handle) = 0;
  virtual void readyMark(std::int32_t handle) = 0;
  virtual void readyPollQ(std::int32_t handle) = 0;

  /// Install a per-channel error callback (see PutErrorCallback). Without
  /// one, a permanently failed put aborts the simulation.
  virtual void setErrorCallback(std::int32_t /*handle*/,
                                PutErrorCallback /*callback*/) {}

  /// Elastic scale-out grew the runtime: extend the per-PE tables. Called
  /// from a serial phase via the runtime's grow hook.
  virtual void onPesGrown() {}

  /// Elastic drain/rebalance: the receiving element migrated. Move the
  /// channel's receive side to `newRecvPe` — same buffer addresses (element
  /// objects are stable), new registration/QP/polling home. Only legal while
  /// the channel is idle (marked, no data pending); the handle id is
  /// unchanged, so senders keep using the handle they were shipped.
  virtual void rehome(std::int32_t handle, int newRecvPe) = 0;

  // Introspection (tests, benches).
  virtual std::size_t pollQueueLength(int pe) const = 0;
  virtual std::uint64_t putsIssued() const = 0;
  virtual std::uint64_t callbacksInvoked() const = 0;
  /// Puts transparently re-issued after an error completion (faults only).
  virtual std::uint64_t putRetries() const { return 0; }
};

// --- paper-style free functions --------------------------------------------

/// CkDirect_createHandle: called by the *receiver*. `buffer` must outlive
/// the channel and hold at least 8 bytes; `oob` is a value the application
/// guarantees never appears in the last 8 bytes of a real payload.
Handle createHandle(charm::Runtime& rts, int receiverPe, void* buffer,
                    std::size_t bytes, std::uint64_t oob, Callback callback);

/// CkDirect_assocLocal: called by the *sender* to bind its source buffer.
/// One send buffer may be associated with many handles (multicast pattern).
void assocLocal(Handle handle, int senderPe, const void* sendBuffer);

/// CkDirect_put: transfer the whole channel-sized block.
void put(Handle handle);

/// CkDirect_ready: mark consumed and resume polling (== readyMark +
/// readyPollQ).
void ready(Handle handle);

/// CkDirect_ReadyMark: the receiver is done with the buffer (re-arms the
/// sentinel). Call as early as possible.
void readyMark(Handle handle);

/// CkDirect_ReadyPollQ: start polling the channel again. Call only in the
/// phase where traffic is expected, to keep the polling queue short (§5.2).
void readyPollQ(Handle handle);

/// Install an error callback on the channel (fault-injection runs). Fires on
/// the sender PE after the manager's transparent recovery gives up.
void setErrorCallback(Handle handle, PutErrorCallback callback);

/// Move a channel's receive side to a new PE after its receiving element
/// migrated (elastic drain / rebalance). Receiver-idle channels only.
void rehome(Handle handle, int newRecvPe);

// --- §6 extensions -----------------------------------------------------------

/// Strided destination channel (see Manager::createStridedHandle). The
/// paper lists strided communication patterns as a planned extension; ARMCI
/// (§2.3) supports them natively.
Handle createStridedHandle(charm::Runtime& rts, int receiverPe, void* base,
                           std::size_t blockBytes, std::size_t strideBytes,
                           int blockCount, std::uint64_t oob,
                           Callback callback);

/// §6 multicast extension: a group of handles fed by one persistent send
/// buffer (§2 explicitly allows associating one buffer with many handles).
/// `put()` issues one put per member.
class Multicast {
 public:
  /// All members must have been assocLocal'd with the same send buffer.
  void add(Handle handle) { members_.push_back(handle); }
  void put() const {
    for (const Handle& h : members_) direct::put(h);
  }
  void ready() const {
    for (const Handle& h : members_) direct::ready(h);
  }
  std::size_t fanout() const { return members_.size(); }

 private:
  std::vector<Handle> members_;
};

}  // namespace ckd::direct
