#pragma once
// CkDirect over Blue Gene/P DCMF (§2.2). Not zero-copy (the DCMF two-sided
// path is used), but it still avoids Charm++'s message wrapping and
// scheduling overhead:
//
//  * put sends the payload via DCMF_Send with a 2-quad-word Info header
//    carrying the entire receive-side context (receive buffer pointer,
//    handle id, request pointer) — no lookup tables at the receiver;
//  * the DCMF receive-completion callback invokes the user callback
//    directly (as machine-level work on the receiving PE, bypassing the
//    message queue);
//  * the Ready calls are no-ops, exactly as in the paper;
//  * per-channel send/receive request buffers are allocated once at
//    createHandle/assocLocal and reused, which is legal because a channel
//    has at most one message in flight (the DCMF layer enforces it).

#include <cstdint>
#include <memory>
#include <vector>

#include "ckdirect/ckdirect.hpp"
#include "dcmf/dcmf.hpp"

namespace ckd::direct {

class BgpManager final : public Manager {
 public:
  explicit BgpManager(charm::Runtime& rts);

  std::int32_t createHandle(int receiverPe, void* buffer, std::size_t bytes,
                            std::uint64_t oob, Callback callback) override;
  std::int32_t createStridedHandle(int receiverPe, void* base,
                                   std::size_t blockBytes,
                                   std::size_t strideBytes, int blockCount,
                                   std::uint64_t oob,
                                   Callback callback) override;
  void assocLocal(std::int32_t handle, int senderPe,
                  const void* sendBuffer) override;
  void put(std::int32_t handle) override;
  void ready(std::int32_t /*handle*/) override {}      // no-op on BG/P
  void readyMark(std::int32_t /*handle*/) override {}  // no-op on BG/P
  void readyPollQ(std::int32_t /*handle*/) override {} // no-op on BG/P
  void setErrorCallback(std::int32_t handle, PutErrorCallback callback) override;
  /// Elastic migration: the DCMF path carries the full receive context in
  /// each message's Info header, so nothing is registered anywhere — only
  /// the destination rank changes (plus a modeled handshake at both ends).
  void rehome(std::int32_t handle, int newRecvPe) override;

  std::size_t pollQueueLength(int /*pe*/) const override { return 0; }
  std::uint64_t putsIssued() const override { return puts_; }
  std::uint64_t callbacksInvoked() const override { return callbacks_; }
  std::uint64_t putRetries() const override { return putRetries_; }

  /// Restart protocol (runs as the runtime's reestablish hook): reset every
  /// channel's DCMF request/retry state to the consistent-cut idle state and
  /// bump the channel epoch so deferred pre-crash put/retry closures die.
  void reestablish();
  std::uint32_t channelEpoch() const { return epoch_; }

 private:
  struct Channel {
    int recvPe = -1;
    std::byte* recvBuffer = nullptr;  // base of the (possibly strided) area
    std::size_t bytes = 0;            // total payload bytes
    std::size_t blockBytes = 0;
    std::size_t strideBytes = 0;
    int blockCount = 1;
    /// Strided channels land in this staging buffer and are scattered at
    /// completion (the BG/P path is not zero-copy anyway, §2.2).
    std::vector<std::byte> staging;
    Callback callback;
    std::unique_ptr<dcmf::Request> recvRequest;

    int sendPe = -1;
    const std::byte* sendBuffer = nullptr;
    std::unique_ptr<dcmf::Request> sendRequest;

    // Fault recovery (active only when the fabric has faults armed).
    int putAttempts = 0;
    PutErrorCallback onError;

    /// Causal chain id of the in-flight put (minted per CkDirect_put; all
    /// retries of one put share it) and the chain that issued it.
    std::uint64_t activeTraceId = 0;
    std::uint64_t activeParentId = 0;
    /// First-issue instant of the in-flight put (-1 idle); retries keep it
    /// so the streaming put histogram sees issue -> arrival per logical put.
    sim::Time activePutAt = -1.0;
  };

  Channel& channel(std::int32_t id);
  std::byte* landingBuffer(Channel& ch);
  /// Hand the put's payload to DCMF (also the re-issue path on retry).
  void issueSend(std::int32_t id);
  void onPutError(std::int32_t id, fault::WcStatus status);
  void onArrived(std::int32_t id);

  charm::Runtime& rts_;
  dcmf::DcmfContext& dcmf_;
  dcmf::ProtocolId protocol_ = -1;
  std::vector<std::unique_ptr<Channel>> channels_;
  std::uint64_t puts_ = 0;
  std::uint64_t callbacks_ = 0;
  std::uint64_t putRetries_ = 0;
  /// Bumped by reestablish(); deferred closures from an older epoch no-op.
  std::uint32_t epoch_ = 0;
};

}  // namespace ckd::direct
