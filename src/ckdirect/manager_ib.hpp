#pragma once
// CkDirect over InfiniBand (§2.1): RDMA writes plus a per-PE polling queue.
//
//  * createHandle registers the receive buffer with the verbs layer, writes
//    the out-of-band pattern into its last 8 bytes, and enqueues the handle
//    on the receiver's polling queue.
//  * assocLocal registers the send buffer and connects an RC queue pair.
//  * put issues one RDMA write of the whole buffer.
//  * The receiving RTS scans the polling queue at every scheduler pump; a
//    handle whose last double word no longer equals the sentinel has
//    received its data — it is dequeued and its callback invoked. The scan
//    costs poll_per_handle_us per queued handle per pump, which is the
//    §5.2 overhead the ReadyMark/ReadyPollQ split exists to bound.

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "ckdirect/ckdirect.hpp"
#include "ib/verbs.hpp"

namespace ckd::direct {

class IbManager final : public Manager {
 public:
  explicit IbManager(charm::Runtime& rts);

  std::int32_t createHandle(int receiverPe, void* buffer, std::size_t bytes,
                            std::uint64_t oob, Callback callback) override;
  std::int32_t createStridedHandle(int receiverPe, void* base,
                                   std::size_t blockBytes,
                                   std::size_t strideBytes, int blockCount,
                                   std::uint64_t oob,
                                   Callback callback) override;
  void assocLocal(std::int32_t handle, int senderPe,
                  const void* sendBuffer) override;
  void put(std::int32_t handle) override;
  void ready(std::int32_t handle) override;
  void readyMark(std::int32_t handle) override;
  void readyPollQ(std::int32_t handle) override;
  void setErrorCallback(std::int32_t handle, PutErrorCallback callback) override;
  void onPesGrown() override;
  void rehome(std::int32_t handle, int newRecvPe) override;

  std::size_t pollQueueLength(int pe) const override;
  std::uint64_t putsIssued() const override {
    return puts_.load(std::memory_order_relaxed);
  }
  std::uint64_t callbacksInvoked() const override {
    return callbacks_.load(std::memory_order_relaxed);
  }
  std::uint64_t putRetries() const override {
    return putRetries_.load(std::memory_order_relaxed);
  }
  std::uint64_t pollScans() const {
    return scans_.load(std::memory_order_relaxed);
  }

  /// Restart protocol (runs as the runtime's reestablish hook): re-register
  /// every region the crash invalidated (buffer addresses are stable across
  /// a restore), reconnect QPs, and roll every channel back to the
  /// consistent-cut state — idle, marked, sentinel armed, polling. Bumps the
  /// channel epoch so deferred pre-crash put/retry closures die instead of
  /// re-issuing writes against rolled-back state.
  void reestablish();
  std::uint32_t channelEpoch() const { return epoch_; }

 private:
  struct Channel {
    int recvPe = -1;
    std::byte* recvBuffer = nullptr;  // base of the (possibly strided) area
    std::size_t bytes = 0;            // total payload bytes
    // Destination layout: blockCount blocks of blockBytes every strideBytes
    // (contiguous channels have blockCount == 1, blockBytes == bytes).
    std::size_t blockBytes = 0;
    std::size_t strideBytes = 0;
    int blockCount = 1;
    std::uint64_t oob = 0;
    Callback callback;
    ib::RegionId recvRegion;

    int sendPe = -1;
    const std::byte* sendBuffer = nullptr;
    ib::RegionId sendRegion;
    ib::QpId qp = ib::kInvalidQp;

    bool inPollQueue = false;
    /// True between readyMark (or creation) and the next data landing;
    /// false while the receiver still owns unconsumed data. A put that
    /// lands while this is false is an application synchronization bug.
    bool marked = false;
    /// Data has been received (callback fired) but the channel has not been
    /// readyMark'ed yet. CkDirect_ReadyPollQ is a no-op in this state —
    /// §2.1: the handle is inserted "if new data has not already been
    /// received for that handle". Without this, a blanket ReadyPollQ over
    /// all channels at a phase boundary would re-detect stale data.
    bool detected = false;

    // Fault recovery (active only when the fabric has faults armed).
    /// Transparent re-puts consumed by the current put (reset on success).
    int putAttempts = 0;
    /// A recovery is already scheduled; error completions from the other
    /// block writes of the same failed put collapse into it.
    bool errorPending = false;
    PutErrorCallback onError;

    /// Causal chain id of the in-flight put (minted per CkDirect_put; all
    /// retries of one put share it) and the chain that issued it.
    std::uint64_t activeTraceId = 0;
    std::uint64_t activeParentId = 0;
    /// First-issue instant of the in-flight put (-1 idle); transparent
    /// retries keep it, so the streaming put histogram sees one sample per
    /// logical put — issue to callback, retries included.
    sim::Time activePutAt = -1.0;
  };

  /// Channels live in per-receiver-PE chunked slabs and a handle id encodes
  /// (receiverPe, per-PE ordinal). Two properties matter under --shards:
  ///  * ids are partition- and thread-count-independent: each PE's creation
  ///    order is fixed by its own deterministic execution, unlike a global
  ///    creation-order counter whose value depends on how concurrently
  ///    executing shard windows happen to interleave;
  ///  * storage is append-stable: a sender shard may resolve an existing
  ///    handle of PE r in the very window in which r's home shard appends a
  ///    new channel. Appends write only the fresh slot of a fixed-capacity
  ///    chunk directory, never move existing channels, and publish chunk
  ///    pointers/counts with release stores (handles themselves reach other
  ///    shards through at least one window barrier).
  struct PeChannels {
    static constexpr std::int32_t kChunkSize = 16;
    static constexpr std::int32_t kMaxChunks = 256;  // 4096 channels per PE
    std::array<std::atomic<Channel*>, kMaxChunks> chunks{};
    std::atomic<std::int32_t> count{0};
    ~PeChannels() {
      for (auto& c : chunks) delete[] c.load(std::memory_order_relaxed);
    }
  };
  /// Low bits of a handle id hold the per-PE ordinal; the rest hold the PE.
  static constexpr std::int32_t kIdxBits = 12;
  static_assert((1 << kIdxBits) == PeChannels::kChunkSize * PeChannels::kMaxChunks);
  static constexpr std::int32_t makeId(std::int32_t pe, std::int32_t idx) {
    return (pe << kIdxBits) | idx;
  }

  Channel& channel(std::int32_t id);
  const Channel& channel(std::int32_t id) const;
  std::uint64_t readSentinel(const Channel& ch) const;
  void writeSentinel(Channel& ch);
  /// Post the block writes for one put (also the re-issue path on retry).
  void issueWrites(std::int32_t id);
  void onDelivered(std::int32_t id);
  void onPutError(std::int32_t id, fault::WcStatus status);
  void pollScan(int pe);
  /// Install this PE's polling-queue scan hook if it is not installed yet.
  void ensurePollHook(int pe);
  bool faultsArmed() const;

  charm::Runtime& rts_;
  ib::IbVerbs& verbs_;
  /// Per-receiver-PE channel slabs (see PeChannels); entries are allocated
  /// lazily on a PE's first createHandle. The outer vector is sized in the
  /// constructor and only ever extended — by onPesGrown, inside a serial
  /// phase — so shard-concurrent channel lookups never race a resize.
  std::vector<std::unique_ptr<PeChannels>> byPe_;
  std::vector<std::vector<std::int32_t>> pollQueue_;  // per PE
  std::vector<bool> hookInstalled_;                   // per PE
  /// Host-stat counters: puts tick on sender shards, scans/callbacks on
  /// receiver shards; the channels themselves are touched by at most one
  /// shard per window (sender and receiver sides alternate across windows).
  std::atomic<std::uint64_t> puts_{0};
  std::atomic<std::uint64_t> callbacks_{0};
  std::atomic<std::uint64_t> scans_{0};
  std::atomic<std::uint64_t> putRetries_{0};
  /// Bumped by reestablish(); deferred closures from an older epoch no-op.
  std::uint32_t epoch_ = 0;
};

}  // namespace ckd::direct
