#include "ckdirect/ckdirect.hpp"

#include <memory>
#include <utility>

#include "ckdirect/manager_bgp.hpp"
#include "ckdirect/manager_ib.hpp"
#include "util/require.hpp"

namespace ckd::direct {

Manager& Manager::of(charm::Runtime& rts) {
  if (!rts.extension()) {
    std::shared_ptr<Manager> mgr;
    if (rts.layer() == charm::LayerKind::kInfiniband)
      mgr = std::make_shared<IbManager>(rts);
    else
      mgr = std::make_shared<BgpManager>(rts);
    rts.setExtension(std::static_pointer_cast<void>(mgr));
  }
  return *std::static_pointer_cast<Manager>(rts.extension());
}

Manager* Manager::peek(charm::Runtime& rts) {
  if (!rts.extension()) return nullptr;
  return std::static_pointer_cast<Manager>(rts.extension()).get();
}

Handle createHandle(charm::Runtime& rts, int receiverPe, void* buffer,
                    std::size_t bytes, std::uint64_t oob, Callback callback) {
  Manager& mgr = Manager::of(rts);
  return Handle{&rts, mgr.createHandle(receiverPe, buffer, bytes, oob,
                                       std::move(callback))};
}

void assocLocal(Handle handle, int senderPe, const void* sendBuffer) {
  CKD_REQUIRE(handle.valid(), "invalid CkDirect handle");
  Manager::of(*handle.rts).assocLocal(handle.id, senderPe, sendBuffer);
}

void put(Handle handle) {
  CKD_REQUIRE(handle.valid(), "invalid CkDirect handle");
  Manager::of(*handle.rts).put(handle.id);
}

void ready(Handle handle) {
  CKD_REQUIRE(handle.valid(), "invalid CkDirect handle");
  Manager::of(*handle.rts).ready(handle.id);
}

void readyMark(Handle handle) {
  CKD_REQUIRE(handle.valid(), "invalid CkDirect handle");
  Manager::of(*handle.rts).readyMark(handle.id);
}

void readyPollQ(Handle handle) {
  CKD_REQUIRE(handle.valid(), "invalid CkDirect handle");
  Manager::of(*handle.rts).readyPollQ(handle.id);
}

void setErrorCallback(Handle handle, PutErrorCallback callback) {
  CKD_REQUIRE(handle.valid(), "invalid CkDirect handle");
  Manager::of(*handle.rts).setErrorCallback(handle.id, std::move(callback));
}

void rehome(Handle handle, int newRecvPe) {
  CKD_REQUIRE(handle.valid(), "invalid CkDirect handle");
  Manager::of(*handle.rts).rehome(handle.id, newRecvPe);
}

Handle createStridedHandle(charm::Runtime& rts, int receiverPe, void* base,
                           std::size_t blockBytes, std::size_t strideBytes,
                           int blockCount, std::uint64_t oob,
                           Callback callback) {
  Manager& mgr = Manager::of(rts);
  return Handle{&rts,
                mgr.createStridedHandle(receiverPe, base, blockBytes,
                                        strideBytes, blockCount, oob,
                                        std::move(callback))};
}

}  // namespace ckd::direct
