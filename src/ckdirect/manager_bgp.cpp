#include "ckdirect/manager_bgp.hpp"

#include <cstring>
#include <utility>

#include "util/require.hpp"

namespace ckd::direct {

BgpManager::BgpManager(charm::Runtime& rts) : rts_(rts), dcmf_(rts.dcmf()) {
  // One protocol serves every CkDirect channel: the Info header "reminds"
  // the receiver of all necessary context at each put (§2.2).
  protocol_ = dcmf_.registerProtocol(
      // Short path (< 224 B): the handler copies into the landing buffer.
      [this](int /*myRank*/, int /*srcRank*/, const dcmf::Info& info,
             const std::byte* data, std::size_t bytes) {
        const auto id =
            static_cast<std::int32_t>(info.quad(0)[1] & 0xffffffffu);
        Channel& ch = channel(id);
        CKD_REQUIRE(dcmf::Info::unpackPointer<std::byte>(info.quad(0)[0]) ==
                        ch.recvBuffer,
                    "Info header receive-buffer pointer is stale");
        std::memcpy(landingBuffer(ch), data, bytes);
        onArrived(id);
      },
      // Normal path: hand DCMF the landing buffer; completion = callback.
      [this](int /*myRank*/, int /*srcRank*/, const dcmf::Info& info,
             std::size_t bytes) {
        const auto id =
            static_cast<std::int32_t>(info.quad(0)[1] & 0xffffffffu);
        Channel& ch = channel(id);
        CKD_REQUIRE(bytes == ch.bytes,
                    "CkDirect put size differs from the channel size");
        CKD_REQUIRE(dcmf::Info::unpackPointer<std::byte>(info.quad(0)[0]) ==
                        ch.recvBuffer,
                    "Info header receive-buffer pointer is stale");
        dcmf::RecvSpec spec;
        spec.buffer = landingBuffer(ch);
        spec.capacity = ch.bytes;
        spec.request =
            dcmf::Info::unpackPointer<dcmf::Request>(info.quad(1)[0]);
        spec.on_complete = [this, id]() { onArrived(id); };
        return spec;
      });
  rts_.setReestablishHook([this]() { reestablish(); });
}

BgpManager::Channel& BgpManager::channel(std::int32_t id) {
  CKD_REQUIRE(id >= 0 && id < static_cast<std::int32_t>(channels_.size()),
              "unknown CkDirect handle");
  return *channels_[static_cast<std::size_t>(id)];
}

std::int32_t BgpManager::createHandle(int receiverPe, void* buffer,
                                      std::size_t bytes, std::uint64_t oob,
                                      Callback callback) {
  return createStridedHandle(receiverPe, buffer, bytes, bytes, 1, oob,
                             std::move(callback));
}

std::int32_t BgpManager::createStridedHandle(int receiverPe, void* base,
                                             std::size_t blockBytes,
                                             std::size_t strideBytes,
                                             int blockCount,
                                             std::uint64_t /*oob*/,
                                             Callback callback) {
  CKD_REQUIRE(base != nullptr, "CkDirect receive buffer is null");
  CKD_REQUIRE(blockBytes > 0, "CkDirect channel must carry data");
  CKD_REQUIRE(blockCount >= 1, "strided channel needs at least one block");
  CKD_REQUIRE(blockCount == 1 || strideBytes >= blockBytes,
              "blocks may not overlap");
  CKD_REQUIRE(callback != nullptr, "CkDirect requires an arrival callback");
  auto ch = std::make_unique<Channel>();
  ch->recvPe = receiverPe;
  ch->recvBuffer = static_cast<std::byte*>(base);
  ch->blockBytes = blockBytes;
  ch->strideBytes = strideBytes;
  ch->blockCount = blockCount;
  ch->bytes = blockBytes * static_cast<std::size_t>(blockCount);
  if (blockCount > 1) ch->staging.resize(ch->bytes);
  ch->callback = std::move(callback);
  // §2.2: the receive-side message transaction state buffer is allocated
  // here and reused for every subsequent put on this channel.
  ch->recvRequest = std::make_unique<dcmf::Request>();
  channels_.push_back(std::move(ch));
  return static_cast<std::int32_t>(channels_.size() - 1);
}

void BgpManager::assocLocal(std::int32_t handle, int senderPe,
                            const void* sendBuffer) {
  Channel& ch = channel(handle);
  CKD_REQUIRE(sendBuffer != nullptr, "CkDirect send buffer is null");
  CKD_REQUIRE(ch.sendPe < 0, "handle already associated with a sender");
  ch.sendPe = senderPe;
  ch.sendBuffer = static_cast<const std::byte*>(sendBuffer);
  ch.sendRequest = std::make_unique<dcmf::Request>();
}

void BgpManager::put(std::int32_t handle) {
  Channel& ch = channel(handle);
  CKD_REQUIRE(ch.sendPe >= 0,
              "CkDirect_put before CkDirect_assocLocal on this handle");
  ++puts_;

  charm::Scheduler& sender = rts_.scheduler(ch.sendPe);
  sender.chargeAs(sim::Layer::kCkDirect, rts_.costs().put_issue_us);
  const sim::Time issue = sender.currentTime();
  // One chain per logical put; transparent retries re-use it (N attempts,
  // one chain). The parent is whatever handler called CkDirect_put.
  ch.activeTraceId = rts_.engine().trace().mintId();
  ch.activeParentId = rts_.engine().trace().context();
  ch.activePutAt = -1.0;  // fresh logical put, fresh latency clock

  const std::uint32_t epoch = epoch_;
  rts_.engine().at(issue, [this, handle, epoch]() {
    if (epoch != epoch_) return;  // put was rolled back by a restore
    issueSend(handle);
  });
}

void BgpManager::issueSend(std::int32_t handle) {
  Channel& ch = channel(handle);
  // Receiver (or sender) died mid-iteration: drop the put silently — the
  // rollback rewinds the sender past this point and re-drives it.
  if (!rts_.peAlive(ch.recvPe) || !rts_.peAlive(ch.sendPe)) return;
  rts_.engine().trace().recordSpan(
      rts_.engine().now(), ch.sendPe, sim::TraceTag::kDirectPut,
      sim::SpanPhase::kBegin, ch.activeTraceId, ch.activeParentId,
      static_cast<double>(ch.bytes), handle);
  // First issue of this logical put starts the streaming latency clock;
  // the retry path re-enters here and must not restart it.
  if (ch.activePutAt < 0.0) ch.activePutAt = rts_.engine().now();
  // Two quad words of context ride with the payload (§2.2): the receive
  // buffer pointer + handle id, and the receive request pointer.
  dcmf::Info info;
  info.append({dcmf::Info::packPointer(ch.recvBuffer),
               static_cast<std::uint64_t>(handle)});
  info.append({dcmf::Info::packPointer(ch.recvRequest.get()), 0});
  dcmf_.send(protocol_, ch.sendPe, ch.recvPe, info, ch.sendBuffer, ch.bytes,
             ch.sendRequest.get(),
             [this, handle]() { channel(handle).putAttempts = 0; },
             /*modeled_wire_bytes=*/0,
             [this, handle](fault::WcStatus status) {
               onPutError(handle, status);
             },
             ch.activeTraceId);
}

void BgpManager::onPutError(std::int32_t handle, fault::WcStatus status) {
  Channel& ch = channel(handle);
  const fault::ReliabilityParams& rel = rts_.fabric().faults()->plan().rel;
  dcmf_.resetChannel(ch.sendPe, ch.recvPe);
  if (ch.putAttempts >= rel.app_retry_budget) {
    // Transparent recovery exhausted: surface the error completion to the
    // application on the sender PE (costed like an ordinary callback).
    CKD_REQUIRE(ch.onError != nullptr,
                "CkDirect put failed permanently with no error callback");
    rts_.scheduler(ch.sendPe).enqueueSystemWork(
        rts_.costs().callback_overhead_us,
        [this, handle, status]() {
          Channel& c = channel(handle);
          c.putAttempts = 0;
          c.onError(status);
        },
        sim::Layer::kCkDirect);
    return;
  }
  ++ch.putAttempts;
  ++putRetries_;
  const std::uint32_t epoch = epoch_;
  rts_.engine().after(rel.timeout_us, [this, handle, epoch]() {
    if (epoch != epoch_) return;  // retry was rolled back by a restore
    issueSend(handle);
  });
}

void BgpManager::setErrorCallback(std::int32_t handle,
                                  PutErrorCallback callback) {
  channel(handle).onError = std::move(callback);
}

void BgpManager::rehome(std::int32_t handle, int newRecvPe) {
  Channel& ch = channel(handle);
  CKD_REQUIRE(newRecvPe >= 0 && newRecvPe < rts_.numPes(),
              "rehome target PE out of range");
  if (ch.recvPe == newRecvPe) return;
  CKD_REQUIRE(!ch.recvRequest || !ch.recvRequest->inFlight,
              "rehome on a channel with a DCMF receive in flight");
  ch.recvPe = newRecvPe;
  // The senders learn the new rank via a modeled control exchange, charged
  // at both ends like the original createHandle/assocLocal pair.
  rts_.scheduler(newRecvPe).enqueueSystemWork(
      rts_.costs().callback_overhead_us, []() {}, sim::Layer::kCkDirect);
  if (ch.sendPe >= 0)
    rts_.scheduler(ch.sendPe).enqueueSystemWork(
        rts_.costs().callback_overhead_us, []() {}, sim::Layer::kCkDirect);
}

void BgpManager::reestablish() {
  // Global rollback just restored every element to a reduction-cut state,
  // where every channel is idle. In-flight DCMF messages died with the link
  // flush, so the per-channel request buffers are reusable again; retry
  // state restarts clean under the new epoch.
  ++epoch_;
  for (const std::unique_ptr<Channel>& ch : channels_) {
    if (ch->recvRequest) ch->recvRequest->inFlight = false;
    if (ch->sendRequest) ch->sendRequest->inFlight = false;
    ch->putAttempts = 0;
    // Re-running the handshake costs work on both endpoints.
    rts_.scheduler(ch->recvPe).enqueueSystemWork(
        rts_.costs().callback_overhead_us, []() {}, sim::Layer::kCkDirect);
    if (ch->sendPe >= 0)
      rts_.scheduler(ch->sendPe).enqueueSystemWork(
          rts_.costs().callback_overhead_us, []() {}, sim::Layer::kCkDirect);
  }
}

std::byte* BgpManager::landingBuffer(Channel& ch) {
  return ch.blockCount == 1 ? ch.recvBuffer : ch.staging.data();
}

void BgpManager::onArrived(std::int32_t id) {
  Channel& ch = channel(id);
  // The callback runs as machine-level work on the receiving PE: it waits
  // for the processor but never for the message queue. Strided channels
  // first scatter the staged payload into place — one more copy, charged
  // at the node's memcpy rate.
  ++callbacks_;
  rts_.engine().trace().recordSpan(
      rts_.engine().now(), ch.recvPe, sim::TraceTag::kDirectCallback,
      sim::SpanPhase::kEnd, ch.activeTraceId, ch.activeParentId, 0.0, id);
  // Streaming put latency: first send issue -> arrival callback, matching
  // the kDirectPut/kDirectCallback causal chain exactly.
  if (ch.activePutAt >= 0.0) {
    rts_.engine().metrics().record(obs::Slo::kPut,
                                   rts_.engine().now() - ch.activePutAt);
    ch.activePutAt = -1.0;
  }
  sim::Time cost = rts_.costs().callback_overhead_us;
  if (ch.blockCount > 1)
    cost += rts_.fabric().params().self_per_byte_us *
            static_cast<double>(ch.bytes);
  rts_.scheduler(ch.recvPe).enqueueSystemWork(
      cost,
      [this, id]() {
        Channel& c = channel(id);
        if (c.blockCount > 1) {
          for (int b = 0; b < c.blockCount; ++b)
            std::memcpy(
                c.recvBuffer + static_cast<std::size_t>(b) * c.strideBytes,
                c.staging.data() + static_cast<std::size_t>(b) * c.blockBytes,
                c.blockBytes);
        }
        // Puts issued by the callback are caused by this arrival.
        sim::TraceRecorder& trace = rts_.engine().trace();
        const std::uint64_t prevCtx = trace.context();
        trace.setContext(c.activeTraceId);
        c.callback();
        trace.setContext(prevCtx);
      },
      sim::Layer::kCkDirect);
}

}  // namespace ckd::direct
