#include "dcmf/dcmf.hpp"

#include <cstring>
#include <utility>

#include "util/require.hpp"

namespace ckd::dcmf {

void Info::append(Quad quad) {
  CKD_REQUIRE(count_ < kMaxQuads, "Info header holds at most 7 quad words");
  quads_[count_++] = quad;
}

const Quad& Info::quad(std::size_t i) const {
  CKD_REQUIRE(i < count_, "Info quad index out of range");
  return quads_[i];
}

DcmfContext::DcmfContext(net::Fabric& fabric) : fabric_(fabric) {}

// Directed-pair channel key, independent of the rank count (an elastic
// scale-out grows numRanks mid-run and must not re-key existing flows).
void DcmfContext::resetChannel(int srcRank, int dstRank) {
  if (link_) link_->resetChannel((srcRank << 20) + dstRank);
}

fault::ReliableLink& DcmfContext::link() {
  if (!link_)
    link_ = std::make_unique<fault::ReliableLink>(
        fabric_, fabric_.faults()->plan().rel);
  return *link_;
}

ProtocolId DcmfContext::registerProtocol(ShortHandler shortHandler,
                                         NormalHandler normalHandler) {
  CKD_REQUIRE(shortHandler != nullptr, "short handler required");
  CKD_REQUIRE(normalHandler != nullptr, "normal handler required");
  protocols_.push_back(
      Protocol{std::move(shortHandler), std::move(normalHandler)});
  return static_cast<ProtocolId>(protocols_.size() - 1);
}

void DcmfContext::send(ProtocolId protocol, int srcRank, int dstRank,
                       Info info, const void* payload, std::size_t bytes,
                       Request* request,
                       std::function<void()> on_local_complete,
                       std::size_t modeled_wire_bytes,
                       std::function<void(fault::WcStatus)> on_error,
                       std::uint64_t trace_id) {
  CKD_REQUIRE(protocol >= 0 &&
                  protocol < static_cast<ProtocolId>(protocols_.size()),
              "send on an unregistered protocol");
  CKD_REQUIRE(srcRank >= 0 && srcRank < numRanks(), "source rank out of range");
  CKD_REQUIRE(dstRank >= 0 && dstRank < numRanks(),
              "destination rank out of range");
  CKD_REQUIRE(payload != nullptr || bytes == 0, "null payload");
  CKD_REQUIRE(request != nullptr, "DCMF_Send requires a request buffer");
  CKD_REQUIRE(!request->inFlight,
              "request reused while its message is still in flight");
  request->inFlight = true;
  ++sends_;

  const auto* src = static_cast<const std::byte*>(payload);
  std::vector<std::byte> data(src, src + bytes);

  const std::size_t wireBytes =
      modeled_wire_bytes ? modeled_wire_bytes : bytes + info.wireBytes();

  if (fabric_.faults() != nullptr) {
    // Faults armed: exactly-once receipt-handler invocation must be earned.
    // One reliability channel per (src, dst) rank pair, shared by every
    // protocol (like the torus packet layer beneath DCMF).
    //
    // The link takes its own payload copy here and go-back-N sequences any
    // overlapping sends on the channel, so the request buffer is reusable
    // as soon as the post is accepted; the (software, retry-delayed) ack
    // only drives on_local_complete / on_error. Holding inFlight until the
    // ack would reject a perfectly legal next send whose predecessor was
    // delivered but whose ack is still being retransmitted.
    request->inFlight = false;
    fault::ReliableLink::Send send;
    send.src = srcRank;
    send.dst = dstRank;
    send.wireBytes = wireBytes;
    send.cls = fault::MsgClass::kPacket;
    send.payload = std::move(data);
    send.on_deliver = [this, protocol, srcRank, dstRank,
                       info](std::vector<std::byte>&& image) mutable {
      deliver(protocol, srcRank, dstRank, info, std::move(image));
    };
    send.on_acked = [done = std::move(on_local_complete)]() {
      if (done) done();
    };
    send.on_error = [onErr = std::move(on_error)](fault::WcStatus status) {
      CKD_REQUIRE(onErr != nullptr,
                  "DCMF send failed permanently with no error handler");
      onErr(status);
    };
    send.traceId = trace_id;
    link().post((srcRank << 20) + dstRank, std::move(send));
    return;
  }

  const sim::Time delivered = fabric_.submit(
      srcRank, dstRank, wireBytes, net::XferKind::kPacket,
      [this, protocol, srcRank, dstRank, info, data = std::move(data)]() mutable {
        deliver(protocol, srcRank, dstRank, info, std::move(data));
      },
      trace_id);

  // Local completion: the send buffer is reusable once the payload has left
  // the node. The model has already copied it, so completion may fire at
  // delivery time (conservative upper bound) and releases the request.
  fabric_.engine().at(delivered,
                      [request, done = std::move(on_local_complete)]() {
                        request->inFlight = false;
                        if (done) done();
                      });
}

void DcmfContext::deliver(ProtocolId protocol, int srcRank, int dstRank,
                          const Info& info, std::vector<std::byte> payload) {
  Protocol& proto = protocols_[static_cast<std::size_t>(protocol)];
  if (payload.size() < kShortLimit) {
    ++shortDeliveries_;
    proto.shortHandler(dstRank, srcRank, info, payload.data(), payload.size());
    return;
  }
  ++normalDeliveries_;
  RecvSpec spec = proto.normalHandler(dstRank, srcRank, info, payload.size());
  CKD_REQUIRE(spec.buffer != nullptr,
              "normal-message handler must provide a receive buffer");
  CKD_REQUIRE(spec.capacity >= payload.size(),
              "receive buffer smaller than the arriving message");
  if (spec.request != nullptr) {
    CKD_REQUIRE(!spec.request->inFlight,
                "receive request reused while still in flight");
  }
  std::memcpy(spec.buffer, payload.data(), payload.size());
  if (spec.on_complete) spec.on_complete();
}

}  // namespace ckd::dcmf
