#include "dcmf/dcmf.hpp"

#include <cstring>
#include <utility>

#include "util/require.hpp"

namespace ckd::dcmf {

void Info::append(Quad quad) {
  CKD_REQUIRE(count_ < kMaxQuads, "Info header holds at most 7 quad words");
  quads_[count_++] = quad;
}

const Quad& Info::quad(std::size_t i) const {
  CKD_REQUIRE(i < count_, "Info quad index out of range");
  return quads_[i];
}

DcmfContext::DcmfContext(net::Fabric& fabric) : fabric_(fabric) {}

ProtocolId DcmfContext::registerProtocol(ShortHandler shortHandler,
                                         NormalHandler normalHandler) {
  CKD_REQUIRE(shortHandler != nullptr, "short handler required");
  CKD_REQUIRE(normalHandler != nullptr, "normal handler required");
  protocols_.push_back(
      Protocol{std::move(shortHandler), std::move(normalHandler)});
  return static_cast<ProtocolId>(protocols_.size() - 1);
}

void DcmfContext::send(ProtocolId protocol, int srcRank, int dstRank,
                       Info info, const void* payload, std::size_t bytes,
                       Request* request,
                       std::function<void()> on_local_complete,
                       std::size_t modeled_wire_bytes) {
  CKD_REQUIRE(protocol >= 0 &&
                  protocol < static_cast<ProtocolId>(protocols_.size()),
              "send on an unregistered protocol");
  CKD_REQUIRE(srcRank >= 0 && srcRank < numRanks(), "source rank out of range");
  CKD_REQUIRE(dstRank >= 0 && dstRank < numRanks(),
              "destination rank out of range");
  CKD_REQUIRE(payload != nullptr || bytes == 0, "null payload");
  CKD_REQUIRE(request != nullptr, "DCMF_Send requires a request buffer");
  CKD_REQUIRE(!request->inFlight,
              "request reused while its message is still in flight");
  request->inFlight = true;
  ++sends_;

  const auto* src = static_cast<const std::byte*>(payload);
  std::vector<std::byte> data(src, src + bytes);

  const std::size_t wireBytes =
      modeled_wire_bytes ? modeled_wire_bytes : bytes + info.wireBytes();
  const sim::Time delivered = fabric_.submit(
      srcRank, dstRank, wireBytes, net::XferKind::kPacket,
      [this, protocol, srcRank, dstRank, info, data = std::move(data)]() mutable {
        deliver(protocol, srcRank, dstRank, info, std::move(data));
      });

  // Local completion: the send buffer is reusable once the payload has left
  // the node. The model has already copied it, so completion may fire at
  // delivery time (conservative upper bound) and releases the request.
  fabric_.engine().at(delivered,
                      [request, done = std::move(on_local_complete)]() {
                        request->inFlight = false;
                        if (done) done();
                      });
}

void DcmfContext::deliver(ProtocolId protocol, int srcRank, int dstRank,
                          const Info& info, std::vector<std::byte> payload) {
  Protocol& proto = protocols_[static_cast<std::size_t>(protocol)];
  if (payload.size() < kShortLimit) {
    ++shortDeliveries_;
    proto.shortHandler(dstRank, srcRank, info, payload.data(), payload.size());
    return;
  }
  ++normalDeliveries_;
  RecvSpec spec = proto.normalHandler(dstRank, srcRank, info, payload.size());
  CKD_REQUIRE(spec.buffer != nullptr,
              "normal-message handler must provide a receive buffer");
  CKD_REQUIRE(spec.capacity >= payload.size(),
              "receive buffer smaller than the arriving message");
  if (spec.request != nullptr) {
    CKD_REQUIRE(!spec.request->inFlight,
                "receive request reused while still in flight");
  }
  std::memcpy(spec.buffer, payload.data(), payload.size());
  if (spec.on_complete) spec.on_complete();
}

}  // namespace ckd::dcmf
