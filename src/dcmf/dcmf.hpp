#pragma once
// A Deep Computing Messaging Framework (DCMF)-like active-message layer,
// modeling the Blue Gene/P messaging substrate the paper's BG/P CkDirect
// implementation is built on (§2.2):
//
//  * two-sided Send with registered receipt handlers, split at 224 bytes:
//    - short messages: the handler itself copies the data out;
//    - normal messages: the handler returns a destination buffer plus a
//      completion callback; the payload lands in that buffer and the
//      callback fires after delivery;
//  * an Info header of up to 7 quad words (16 B each) that travels with the
//    message — CkDirect/BG-P ships the whole receive-side context in it;
//  * explicit per-message request/state buffers on both sides; a request
//    may not be reused while its message is in flight (the model enforces
//    this, which is how CkDirect's one-message-in-flight constraint is
//    checked on BG/P);
//  * a local send-completion callback.

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "fault/reliable.hpp"
#include "net/fabric.hpp"

namespace ckd::dcmf {

/// One 16-byte quad word of Info header.
using Quad = std::array<std::uint64_t, 2>;

/// Messages strictly shorter than this take the short-handler path.
constexpr std::size_t kShortLimit = 224;

/// Up to 7 quad words of out-of-band metadata, delivered with the payload.
class Info {
 public:
  static constexpr std::size_t kMaxQuads = 7;

  Info() = default;
  void append(Quad quad);
  std::size_t quadCount() const { return count_; }
  const Quad& quad(std::size_t i) const;
  /// Bytes this header adds to the wire (16 per quad).
  std::size_t wireBytes() const { return count_ * sizeof(Quad); }

  /// Convenience: pack/unpack a pointer into half a quad word.
  static std::uint64_t packPointer(const void* p) {
    return reinterpret_cast<std::uintptr_t>(p);
  }
  template <typename T>
  static T* unpackPointer(std::uint64_t bits) {
    return reinterpret_cast<T*>(static_cast<std::uintptr_t>(bits));
  }

 private:
  std::array<Quad, kMaxQuads> quads_{};
  std::size_t count_ = 0;
};

/// User-allocated message transaction state (DCMF_Request_t). The model
/// tracks the in-flight flag to enforce the no-reuse-while-in-flight rule.
struct Request {
  bool inFlight = false;
};

/// What a normal-message receipt handler must provide (§2.2): where to put
/// the payload, and what to call once it has landed.
struct RecvSpec {
  std::byte* buffer = nullptr;
  std::size_t capacity = 0;
  std::function<void()> on_complete;
  Request* request = nullptr;
};

using ProtocolId = int;

class DcmfContext {
 public:
  /// `srcRank`, `myRank` let one handler serve every simulated rank.
  using ShortHandler = std::function<void(int myRank, int srcRank,
                                          const Info& info,
                                          const std::byte* data,
                                          std::size_t bytes)>;
  using NormalHandler = std::function<RecvSpec(int myRank, int srcRank,
                                               const Info& info,
                                               std::size_t bytes)>;

  explicit DcmfContext(net::Fabric& fabric);

  net::Fabric& fabric() { return fabric_; }
  int numRanks() const { return fabric_.numPes(); }

  /// Register a protocol on every rank (collective in real DCMF; the model
  /// registers once and dispatches by destination rank).
  ProtocolId registerProtocol(ShortHandler shortHandler,
                              NormalHandler normalHandler);

  /// DCMF_Send. The Info header rides along with the payload (its quad
  /// words count toward wire bytes). `request` must not already be in
  /// flight; it is released when `on_local_complete` fires.
  /// `modeled_wire_bytes` overrides the charged wire size (0 = actual
  /// payload + Info); the runtime uses it to model envelope-size ablations
  /// without changing the real buffer contents.
  ///
  /// With faults armed on the fabric the send rides a fault::ReliableLink
  /// (seq/checksum/ack/retransmit); `on_local_complete` then fires at ack
  /// time, and a permanent failure releases the request and reports through
  /// `on_error` (aborting if no handler was given).
  void send(ProtocolId protocol, int srcRank, int dstRank, Info info,
            const void* payload, std::size_t bytes, Request* request,
            std::function<void()> on_local_complete = {},
            std::size_t modeled_wire_bytes = 0,
            std::function<void(fault::WcStatus)> on_error = {},
            std::uint64_t trace_id = 0);

  /// Recover the (src, dst) reliability channel after a permanent failure
  /// (models re-establishing the torus connection). No-op when healthy.
  void resetChannel(int srcRank, int dstRank);

  /// Fail-stop support: flush every reliable flow touching `rank` / every
  /// flow. Pending sends are dropped silently (the restart protocol
  /// re-drives them); pre-crash copies on the wire are NAKed as stale.
  void flushPe(int rank) {
    if (link_) link_->flushPe(rank);
  }
  void flushAll() {
    if (link_) link_->flushAll();
  }
  std::uint64_t staleNaks() const { return link_ ? link_->staleNaks() : 0; }

  std::uint64_t sendsPosted() const { return sends_; }
  std::uint64_t shortDeliveries() const { return shortDeliveries_; }
  std::uint64_t normalDeliveries() const { return normalDeliveries_; }

 private:
  struct Protocol {
    ShortHandler shortHandler;
    NormalHandler normalHandler;
  };

  void deliver(ProtocolId protocol, int srcRank, int dstRank, const Info& info,
               std::vector<std::byte> payload);
  fault::ReliableLink& link();

  net::Fabric& fabric_;
  std::unique_ptr<fault::ReliableLink> link_;  ///< lazy; only with faults
  std::vector<Protocol> protocols_;
  std::uint64_t sends_ = 0;
  std::uint64_t shortDeliveries_ = 0;
  std::uint64_t normalDeliveries_ = 0;
};

}  // namespace ckd::dcmf
