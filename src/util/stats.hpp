#pragma once
// Accumulators for experiment measurements: streaming mean/variance (Welford)
// and a sample reservoir for exact percentiles.

#include <cstddef>
#include <vector>

namespace ckd::util {

/// Streaming mean / variance / min / max; O(1) memory.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);
  void clear();

  std::size_t count() const { return count_; }
  double mean() const { return count_ ? mean_ : 0.0; }
  /// Unbiased sample variance; 0 when fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return count_ ? min_ : 0.0; }
  double max() const { return count_ ? max_ : 0.0; }
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Keeps every sample; supports exact quantiles. Intended for experiment
/// post-processing, not hot paths.
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); }
  std::size_t count() const { return samples_.size(); }
  double mean() const;
  /// Exact quantile by linear interpolation, q in [0,1]. Requires samples.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }
  const std::vector<double>& samples() const { return samples_; }
  void clear() { samples_.clear(); }

 private:
  std::vector<double> samples_;
};

}  // namespace ckd::util
