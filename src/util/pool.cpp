#include "util/pool.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <vector>

namespace ckd::util {

namespace {

/// Live-pool registry backing processStats(). Function-local static so it is
/// constructed before the first pool registers and destroyed after the last
/// thread-local pool unregisters.
struct PoolRegistry {
  std::mutex mu;
  std::vector<const BufferPool*> pools;
};

PoolRegistry& registry() {
  static PoolRegistry reg;
  return reg;
}

thread_local BufferPool* tlsCurrentPool = nullptr;

}  // namespace

BufferPool& BufferPool::instance() {
  if (tlsCurrentPool != nullptr) return *tlsCurrentPool;
  static thread_local BufferPool pool;
  return pool;
}

BufferPool* BufferPool::swapCurrent(BufferPool* pool) {
  BufferPool* prev = tlsCurrentPool;
  tlsCurrentPool = pool;
  return prev;
}

BufferPool::Stats BufferPool::processStats() {
  PoolRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  Stats total;
  for (const BufferPool* pool : reg.pools) {
    const Stats& s = pool->stats();
    total.hits += s.hits;
    total.misses += s.misses;
    total.releases += s.releases;
    total.unpooled += s.unpooled;
    total.cachedBytes += s.cachedBytes;
  }
  return total;
}

BufferPool::BufferPool() {
  const char* env = std::getenv("CKD_POOLS");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0))
    enabled_ = false;
  PoolRegistry& reg = registry();
  std::lock_guard<std::mutex> lock(reg.mu);
  reg.pools.push_back(this);
}

BufferPool::~BufferPool() {
  {
    PoolRegistry& reg = registry();
    std::lock_guard<std::mutex> lock(reg.mu);
    reg.pools.erase(std::remove(reg.pools.begin(), reg.pools.end(), this),
                    reg.pools.end());
  }
  trim();
}

int BufferPool::classIndex(std::size_t bytes) {
  if (bytes > kMaxPooledBytes) return -1;
  const std::size_t cap = std::max(bytes, kMinClassBytes);
  return static_cast<int>(std::bit_width(cap - 1)) - 6;  // 64 B == class 0
}

std::size_t BufferPool::classCapacity(std::size_t bytes) {
  if (bytes > kMaxPooledBytes) return bytes;
  return std::max<std::size_t>(std::bit_ceil(std::max(bytes, kMinClassBytes)),
                               kMinClassBytes);
}

std::byte* BufferPool::acquire(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  const int cls = classIndex(bytes);
  if (cls < 0) {
    ++stats_.unpooled;
    return new std::byte[bytes];
  }
  std::vector<std::byte*>& list = free_[static_cast<std::size_t>(cls)];
  if (enabled_ && !list.empty()) {
    std::byte* block = list.back();
    list.pop_back();
    stats_.cachedBytes -= classCapacity(bytes);
    ++stats_.hits;
    return block;
  }
  ++stats_.misses;
  // Always allocate the full class capacity, even while disabled: a block's
  // geometry must not depend on the enabled state it was acquired under, or
  // toggling mid-run would seed free lists with undersized blocks.
  return new std::byte[classCapacity(bytes)];
}

void BufferPool::release(std::byte* block, std::size_t bytes) {
  if (block == nullptr) return;
  ++stats_.releases;
  const int cls = classIndex(bytes);
  if (cls >= 0 && enabled_) {
    std::vector<std::byte*>& list = free_[static_cast<std::size_t>(cls)];
    if (list.size() < kMaxFreePerClass) {
      list.push_back(block);
      stats_.cachedBytes += classCapacity(bytes);
      return;
    }
  }
  delete[] block;
}

void BufferPool::trim() {
  for (std::vector<std::byte*>& list : free_) {
    for (std::byte* block : list) delete[] block;
    list.clear();
    list.shrink_to_fit();
  }
  stats_.cachedBytes = 0;
}

}  // namespace ckd::util
