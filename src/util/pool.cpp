#include "util/pool.hpp"

#include <algorithm>
#include <bit>
#include <cstdlib>
#include <cstring>

namespace ckd::util {

BufferPool& BufferPool::instance() {
  static thread_local BufferPool pool;
  return pool;
}

BufferPool::BufferPool() {
  const char* env = std::getenv("CKD_POOLS");
  if (env != nullptr &&
      (std::strcmp(env, "off") == 0 || std::strcmp(env, "0") == 0))
    enabled_ = false;
}

int BufferPool::classIndex(std::size_t bytes) {
  if (bytes > kMaxPooledBytes) return -1;
  const std::size_t cap = std::max(bytes, kMinClassBytes);
  return static_cast<int>(std::bit_width(cap - 1)) - 6;  // 64 B == class 0
}

std::size_t BufferPool::classCapacity(std::size_t bytes) {
  if (bytes > kMaxPooledBytes) return bytes;
  return std::max<std::size_t>(std::bit_ceil(std::max(bytes, kMinClassBytes)),
                               kMinClassBytes);
}

std::byte* BufferPool::acquire(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  const int cls = classIndex(bytes);
  if (cls < 0) {
    ++stats_.unpooled;
    return new std::byte[bytes];
  }
  std::vector<std::byte*>& list = free_[static_cast<std::size_t>(cls)];
  if (enabled_ && !list.empty()) {
    std::byte* block = list.back();
    list.pop_back();
    stats_.cachedBytes -= classCapacity(bytes);
    ++stats_.hits;
    return block;
  }
  ++stats_.misses;
  // Always allocate the full class capacity, even while disabled: a block's
  // geometry must not depend on the enabled state it was acquired under, or
  // toggling mid-run would seed free lists with undersized blocks.
  return new std::byte[classCapacity(bytes)];
}

void BufferPool::release(std::byte* block, std::size_t bytes) {
  if (block == nullptr) return;
  ++stats_.releases;
  const int cls = classIndex(bytes);
  if (cls >= 0 && enabled_) {
    std::vector<std::byte*>& list = free_[static_cast<std::size_t>(cls)];
    if (list.size() < kMaxFreePerClass) {
      list.push_back(block);
      stats_.cachedBytes += classCapacity(bytes);
      return;
    }
  }
  delete[] block;
}

void BufferPool::trim() {
  for (std::vector<std::byte*>& list : free_) {
    for (std::byte* block : list) delete[] block;
    list.clear();
    list.shrink_to_fit();
  }
  stats_.cachedBytes = 0;
}

}  // namespace ckd::util
