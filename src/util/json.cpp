#include "util/json.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

#include "util/require.hpp"

namespace ckd::util {

bool JsonValue::asBool() const {
  CKD_REQUIRE(kind_ == Kind::kBool, "JSON value is not a bool");
  return bool_;
}

double JsonValue::asNumber() const {
  CKD_REQUIRE(kind_ == Kind::kNumber, "JSON value is not a number");
  return number_;
}

const std::string& JsonValue::asString() const {
  CKD_REQUIRE(kind_ == Kind::kString, "JSON value is not a string");
  return string_;
}

void JsonValue::push(JsonValue v) {
  CKD_REQUIRE(kind_ == Kind::kArray, "push on a non-array JSON value");
  array_.push_back(std::move(v));
}

std::size_t JsonValue::size() const {
  if (kind_ == Kind::kArray) return array_.size();
  if (kind_ == Kind::kObject) return object_.size();
  CKD_REQUIRE(false, "size() on a scalar JSON value");
  return 0;
}

const JsonValue& JsonValue::at(std::size_t i) const {
  CKD_REQUIRE(kind_ == Kind::kArray, "index into a non-array JSON value");
  CKD_REQUIRE(i < array_.size(), "JSON array index out of range");
  return array_[i];
}

JsonValue& JsonValue::set(std::string key, JsonValue v) {
  CKD_REQUIRE(kind_ == Kind::kObject, "set on a non-object JSON value");
  for (auto& [k, existing] : object_) {
    if (k == key) {
      existing = std::move(v);
      return *this;
    }
  }
  object_.emplace_back(std::move(key), std::move(v));
  return *this;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  CKD_REQUIRE(kind_ == Kind::kObject, "find on a non-object JSON value");
  for (const auto& [k, v] : object_)
    if (k == key) return &v;
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* v = find(key);
  CKD_REQUIRE(v != nullptr, "JSON object key not found");
  return *v;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members()
    const {
  CKD_REQUIRE(kind_ == Kind::kObject, "members on a non-object JSON value");
  return object_;
}

std::string jsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonNumber(double v) {
  CKD_REQUIRE(std::isfinite(v), "JSON cannot represent NaN/Inf");
  char buf[32];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  return std::string(buf, res.ptr);
}

void JsonValue::dumpTo(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::kNull: out += "null"; return;
    case Kind::kBool: out += bool_ ? "true" : "false"; return;
    case Kind::kNumber: out += jsonNumber(number_); return;
    case Kind::kString:
      out += '"';
      out += jsonEscape(string_);
      out += '"';
      return;
    case Kind::kArray: {
      if (array_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < array_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        array_[i].dumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      return;
    }
    case Kind::kObject: {
      if (object_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        first = false;
        newline(depth + 1);
        out += '"';
        out += jsonEscape(k);
        out += "\":";
        if (indent > 0) out += ' ';
        v.dumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parseDocument() {
    JsonValue v = parseValue();
    skipWs();
    CKD_REQUIRE(pos_ == text_.size(), "trailing characters after JSON value");
    return v;
  }

 private:
  void skipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])))
      ++pos_;
  }

  char peek() {
    CKD_REQUIRE(pos_ < text_.size(), "unexpected end of JSON input");
    return text_[pos_];
  }

  void expect(char c) {
    CKD_REQUIRE(pos_ < text_.size() && text_[pos_] == c,
                "unexpected character in JSON input");
    ++pos_;
  }

  bool consume(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  JsonValue parseValue() {
    skipWs();
    const char c = peek();
    if (c == '{') return parseObject();
    if (c == '[') return parseArray();
    if (c == '"') return JsonValue(parseString());
    if (consume("true")) return JsonValue(true);
    if (consume("false")) return JsonValue(false);
    if (consume("null")) return JsonValue(nullptr);
    return parseNumber();
  }

  JsonValue parseObject() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skipWs();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skipWs();
      std::string key = parseString();
      skipWs();
      expect(':');
      obj.set(std::move(key), parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parseArray() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skipWs();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.push(parseValue());
      skipWs();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      const char c = peek();
      ++pos_;
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      const char esc = peek();
      ++pos_;
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          CKD_REQUIRE(pos_ + 4 <= text_.size(), "truncated \\u escape");
          unsigned code = 0;
          const auto res =
              std::from_chars(text_.data() + pos_, text_.data() + pos_ + 4,
                              code, 16);
          CKD_REQUIRE(res.ec == std::errc{} &&
                          res.ptr == text_.data() + pos_ + 4,
                      "bad \\u escape");
          CKD_REQUIRE(code < 0x80, "non-ASCII \\u escapes unsupported");
          out += static_cast<char>(code);
          pos_ += 4;
          break;
        }
        default:
          CKD_REQUIRE(false, "unknown escape in JSON string");
      }
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+'))
      ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-'))
      ++pos_;
    double value = 0.0;
    const auto res =
        std::from_chars(text_.data() + start, text_.data() + pos_, value);
    CKD_REQUIRE(res.ec == std::errc{} && res.ptr == text_.data() + pos_,
                "malformed JSON number");
    return JsonValue(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parseDocument();
}

}  // namespace ckd::util
