#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "util/require.hpp"

namespace ckd::util {

void TablePrinter::setHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::addRow(std::vector<std::string> row) {
  CKD_REQUIRE(header_.empty() || row.size() == header_.size(),
              "table row width must match the header");
  rows_.push_back(std::move(row));
}

void TablePrinter::print(std::ostream& os) const { os << toString(); }

std::string TablePrinter::toString() const {
  std::vector<std::size_t> widths(header_.size(), 0);
  auto widen = [&](const std::vector<std::string>& row) {
    if (widths.size() < row.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  widen(header_);
  for (const auto& row : rows_) widen(row);

  std::ostringstream out;
  if (!title_.empty()) out << title_ << "\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i) out << "  ";
      out << row[i];
      for (std::size_t pad = row[i].size(); pad < widths[i]; ++pad) out << ' ';
    }
    out << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i)
      total += widths[i] + (i ? 2 : 0);
    out << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void CsvWriter::writeRow(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) os_ << ',';
    const std::string& cell = cells[i];
    const bool needsQuote =
        cell.find_first_of(",\"\n") != std::string::npos;
    if (!needsQuote) {
      os_ << cell;
      continue;
    }
    os_ << '"';
    for (char c : cell) {
      if (c == '"') os_ << '"';
      os_ << c;
    }
    os_ << '"';
  }
  os_ << '\n';
}

std::string formatFixed(double value, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", decimals, value);
  return buffer;
}

std::string formatPercent(double fraction, int decimals) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f%%", decimals, fraction * 100.0);
  return buffer;
}

}  // namespace ckd::util
