#pragma once
// Minimal JSON tree: build, dump, parse. Covers exactly what the bench
// output schema needs — objects preserve insertion order so emitted files
// are stable, numbers round-trip via shortest-form formatting, and the
// recursive-descent parser exists so tests can verify schema round-trips.
// Not a general-purpose library (no \uXXXX surrogate pairs, no comments).

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ckd::util {

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  JsonValue(std::nullptr_t) : kind_(Kind::kNull) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double n) : kind_(Kind::kNumber), number_(n) {}
  JsonValue(int n) : kind_(Kind::kNumber), number_(n) {}
  JsonValue(long n) : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(unsigned long n)
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(long long n)
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(unsigned long long n)
      : kind_(Kind::kNumber), number_(static_cast<double>(n)) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}
  JsonValue(std::string_view s) : kind_(Kind::kString), string_(s) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}

  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  Kind kind() const { return kind_; }
  bool isNull() const { return kind_ == Kind::kNull; }
  bool isBool() const { return kind_ == Kind::kBool; }
  bool isNumber() const { return kind_ == Kind::kNumber; }
  bool isString() const { return kind_ == Kind::kString; }
  bool isArray() const { return kind_ == Kind::kArray; }
  bool isObject() const { return kind_ == Kind::kObject; }

  bool asBool() const;
  double asNumber() const;
  const std::string& asString() const;

  // Arrays.
  void push(JsonValue v);
  std::size_t size() const;
  const JsonValue& at(std::size_t i) const;

  // Objects (insertion-ordered).
  JsonValue& set(std::string key, JsonValue v);
  /// nullptr when absent.
  const JsonValue* find(std::string_view key) const;
  /// CKD_REQUIREs presence.
  const JsonValue& at(std::string_view key) const;
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Serialize. indent == 0 emits one line; otherwise pretty-prints.
  std::string dump(int indent = 0) const;

  /// Parse a complete JSON document; CKD_REQUIREs on malformed input.
  static JsonValue parse(std::string_view text);

 private:
  void dumpTo(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

/// JSON string escaping (shared with the streaming trace dumper).
std::string jsonEscape(std::string_view s);

/// Shortest round-trip formatting for a double ("12", "0.25", "1e-09").
std::string jsonNumber(double v);

}  // namespace ckd::util
