#pragma once
// Tiny command-line parser for the bench / example binaries.
// Supports --flag, --key=value and --key value forms.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace ckd::util {

class Args {
 public:
  Args(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t getInt(const std::string& key, std::int64_t fallback) const;
  double getDouble(const std::string& key, double fallback) const;
  bool getBool(const std::string& key, bool fallback) const;

  /// Comma-separated integer list, e.g. --procs=64,128,256.
  std::vector<std::int64_t> getIntList(
      const std::string& key, const std::vector<std::int64_t>& fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace ckd::util
