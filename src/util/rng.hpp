#pragma once
// Deterministic xoshiro256** PRNG. std::mt19937 would also be deterministic,
// but distributions are not portable across standard libraries; we implement
// the few we need so experiment results are bit-identical everywhere.

#include <cstdint>

#include "util/require.hpp"

namespace ckd::util {

/// xoshiro256** by Blackman & Vigna (public domain reference algorithm).
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 to expand the seed into four non-zero words.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    CKD_REQUIRE(bound > 0, "Rng::below requires a positive bound");
    // Lemire's multiply-shift rejection method (unbiased).
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    CKD_REQUIRE(lo <= hi, "Rng::range requires lo <= hi");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  bool chance(double probability) { return uniform() < probability; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
};

}  // namespace ckd::util
