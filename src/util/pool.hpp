#pragma once
// BufferPool: size-classed recycling for the simulator's wire buffers.
//
// Every charm::Message owns a contiguous [header][payload] image; under
// heavy traffic those buffers are allocated and freed millions of times per
// run with a handful of distinct sizes. The pool hands them out from
// power-of-two size classes (64 B .. 4 MB) and keeps freed blocks on a
// per-class free list, so the steady state allocates nothing.
//
// Determinism contract: pooling must never change virtual-time results.
// That holds because (a) nothing in the simulator branches on pointer
// values, and (b) recycled blocks are never read before they are written
// (acquire() deliberately leaves contents stale — see Message::makeUninit).
// The CKD_POOLS=off escape hatch (or setEnabled(false), the test hook)
// switches acquire/release to plain new[]/delete[] *with identical
// geometry*, which is what the determinism A/B test compares against.
//
// Single-threaded by design, like the engine it serves.

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ckd::util {

class BufferPool {
 public:
  /// Smallest / largest pooled block. Requests above kMaxPooledBytes are
  /// served exact-sized and never cached (multi-megabyte one-offs would
  /// pin too much memory).
  static constexpr std::size_t kMinClassBytes = 64;
  static constexpr std::size_t kMaxPooledBytes = 4u << 20;
  /// Free blocks retained per class before release() starts freeing.
  static constexpr std::size_t kMaxFreePerClass = 1024;

  struct Stats {
    std::uint64_t hits = 0;      ///< acquires served from a free list
    std::uint64_t misses = 0;    ///< acquires that had to allocate
    std::uint64_t releases = 0;  ///< blocks returned (cached or freed)
    std::uint64_t unpooled = 0;  ///< oversized acquires, always exact-sized
    std::size_t cachedBytes = 0; ///< bytes currently parked on free lists
  };

  /// Pool serving the calling execution context: the pool installed via
  /// swapCurrent() when one is, the thread's own default pool otherwise.
  /// Each shard of the parallel engine owns a pool and installs it for the
  /// duration of its window, so a shard's free lists follow the shard across
  /// worker threads (NUMA/shard-local recycling) and acquire/release stay
  /// lock-free. A block acquired under one pool and released under another
  /// simply parks on the releaser's list — geometry is identical everywhere,
  /// and pooling never changes simulation results (the CKD_POOLS A/B gate
  /// checks that).
  static BufferPool& instance();

  /// Pools are constructible as plain members (per-shard instances); every
  /// pool registers itself so processStats() can aggregate.
  BufferPool();

  /// Install `pool` as the calling thread's current pool (nullptr restores
  /// the thread-default). Returns the previous override so callers can
  /// scope the swap. The pool must outlive the installation.
  static BufferPool* swapCurrent(BufferPool* pool);

  /// Sum of stats() over every live pool in the process (thread defaults
  /// and per-shard instances). Call only while no pool is mid-acquire on
  /// another thread — e.g. with the parallel engine's shards parked.
  static Stats processStats();

  /// Enabled state: free-list recycling on/off. Initialized from the
  /// CKD_POOLS environment variable (default on; "off"/"0" disables); tests
  /// flip it directly for A/B determinism runs. Disabling does not change
  /// block geometry — only whether freed blocks are cached.
  void setEnabled(bool on) { enabled_ = on; }
  bool enabled() const { return enabled_; }

  const Stats& stats() const { return stats_; }
  void resetStats() { stats_ = Stats{.cachedBytes = stats_.cachedBytes}; }

  /// Rounded-up capacity `bytes` will actually be served with.
  static std::size_t classCapacity(std::size_t bytes);

  /// Raw interface (PooledBuffer / PoolAllocator are the typed front ends).
  /// acquire(0) returns nullptr; contents of recycled blocks are stale.
  std::byte* acquire(std::size_t bytes);
  void release(std::byte* block, std::size_t bytes);

  /// Free every cached block (test hygiene between A/B runs).
  void trim();

  ~BufferPool();

 private:
  static int classIndex(std::size_t bytes);  ///< -1 when unpooled

  std::array<std::vector<std::byte*>, 17> free_;  // 2^6 .. 2^22
  Stats stats_;
  bool enabled_ = true;
};

/// Move-only RAII block from the BufferPool. `size()` is the requested size;
/// the underlying block may be larger (its size class).
class PooledBuffer {
 public:
  PooledBuffer() = default;
  explicit PooledBuffer(std::size_t bytes)
      : data_(BufferPool::instance().acquire(bytes)), size_(bytes) {}

  PooledBuffer(PooledBuffer&& other) noexcept
      : data_(other.data_), size_(other.size_) {
    other.data_ = nullptr;
    other.size_ = 0;
  }
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      reset();
      data_ = other.data_;
      size_ = other.size_;
      other.data_ = nullptr;
      other.size_ = 0;
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;
  ~PooledBuffer() { reset(); }

  std::byte* data() { return data_; }
  const std::byte* data() const { return data_; }
  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void reset() {
    if (data_ != nullptr) BufferPool::instance().release(data_, size_);
    data_ = nullptr;
    size_ = 0;
  }

 private:
  std::byte* data_ = nullptr;
  std::size_t size_ = 0;
};

/// Minimal allocator routing through the BufferPool, so allocate_shared can
/// place a Message and its shared_ptr control block in one recycled block.
template <class T>
struct PoolAllocator {
  using value_type = T;

  PoolAllocator() = default;
  template <class U>
  PoolAllocator(const PoolAllocator<U>&) {}  // NOLINT: rebind conversion

  T* allocate(std::size_t n) {
    return reinterpret_cast<T*>(
        BufferPool::instance().acquire(n * sizeof(T)));
  }
  void deallocate(T* p, std::size_t n) {
    BufferPool::instance().release(reinterpret_cast<std::byte*>(p),
                                   n * sizeof(T));
  }

  friend bool operator==(const PoolAllocator&, const PoolAllocator&) {
    return true;
  }
};

}  // namespace ckd::util
