#include "util/logging.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace ckd::util {

namespace {
LogLevel g_level = LogLevel::kWarn;

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
  }
  return "?";
}
}  // namespace

void setLogLevel(LogLevel level) { g_level = level; }
LogLevel logLevel() { return g_level; }

LogLevel parseLogLevel(const std::string& name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  if (lower == "trace") return LogLevel::kTrace;
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "warn") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return LogLevel::kInfo;
}

namespace detail {
void emit(LogLevel level, const std::string& text) {
  if (static_cast<int>(level) < static_cast<int>(g_level)) return;
  std::fprintf(stderr, "[%s] %s\n", levelName(level), text.c_str());
}
}  // namespace detail

}  // namespace ckd::util
