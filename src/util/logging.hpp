#pragma once
// Minimal leveled logger. Single-threaded by design: the simulator runs the
// whole machine on one OS thread (see src/sim), so no locking is needed
// (CP.3: no shared mutable state to synchronize).

#include <sstream>
#include <string>

namespace ckd::util {

enum class LogLevel { kTrace = 0, kDebug = 1, kInfo = 2, kWarn = 3, kError = 4 };

/// Global log threshold; messages below it are discarded.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Parse "trace" / "debug" / "info" / "warn" / "error" (case-insensitive).
/// Returns kInfo for unknown strings.
LogLevel parseLogLevel(const std::string& name);

namespace detail {
void emit(LogLevel level, const std::string& text);

class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { emit(level_, stream_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

}  // namespace ckd::util

#define CKD_LOG(level)                                                  \
  if (static_cast<int>(::ckd::util::logLevel()) <=                      \
      static_cast<int>(::ckd::util::LogLevel::level))                   \
  ::ckd::util::detail::LogLine(::ckd::util::LogLevel::level)

#define CKD_TRACE CKD_LOG(kTrace)
#define CKD_DEBUG CKD_LOG(kDebug)
#define CKD_INFO CKD_LOG(kInfo)
#define CKD_WARN CKD_LOG(kWarn)
#define CKD_ERROR CKD_LOG(kError)
