#include "util/args.hpp"

#include <cstdlib>

namespace ckd::util {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    // "--key value" if the next token is not itself a flag; bare "--flag"
    // otherwise.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "";
    }
  }
}

bool Args::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Args::get(const std::string& key,
                      const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Args::getInt(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Args::getDouble(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

bool Args::getBool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  if (it->second.empty() || it->second == "1" || it->second == "true" ||
      it->second == "yes" || it->second == "on")
    return true;
  return false;
}

std::vector<std::int64_t> Args::getIntList(
    const std::string& key, const std::vector<std::int64_t>& fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end() || it->second.empty()) return fallback;
  std::vector<std::int64_t> out;
  const std::string& text = it->second;
  std::size_t start = 0;
  while (start <= text.size()) {
    auto comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    if (comma > start)
      out.push_back(std::strtoll(text.substr(start, comma - start).c_str(),
                                 nullptr, 10));
    start = comma + 1;
  }
  return out;
}

}  // namespace ckd::util
