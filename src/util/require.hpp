#pragma once
// Contract-checking macros.
//
// CKD_REQUIRE is always on (precondition violations in a simulator are
// programming errors that would otherwise silently corrupt results).
// CKD_ASSERT compiles out in NDEBUG builds and is meant for internal
// invariants on hot paths.

#include <cstdio>
#include <cstdlib>

namespace ckd::detail {

[[noreturn]] inline void contractFailure(const char* kind, const char* expr,
                                         const char* file, int line,
                                         const char* msg) {
  std::fprintf(stderr, "[ckdirect] %s failed: %s\n  at %s:%d\n  %s\n", kind,
               expr, file, line, msg ? msg : "");
  std::abort();
}

}  // namespace ckd::detail

#define CKD_REQUIRE(cond, msg)                                               \
  do {                                                                       \
    if (!(cond))                                                             \
      ::ckd::detail::contractFailure("CKD_REQUIRE", #cond, __FILE__,         \
                                     __LINE__, (msg));                       \
  } while (0)

#ifdef NDEBUG
#define CKD_ASSERT(cond, msg) ((void)0)
#else
#define CKD_ASSERT(cond, msg)                                                \
  do {                                                                       \
    if (!(cond))                                                             \
      ::ckd::detail::contractFailure("CKD_ASSERT", #cond, __FILE__,          \
                                     __LINE__, (msg));                       \
  } while (0)
#endif
