#pragma once
// Formatting helpers for the paper-style result tables printed by the bench
// binaries, plus a CSV writer for plotting.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace ckd::util {

/// Column-aligned text table. Usage:
///   TablePrinter t;
///   t.setHeader({"Message Size", "Default", "CkDirect"});
///   t.addRow({"0.1", "22.9", "12.4"});
///   t.print(std::cout);
class TablePrinter {
 public:
  void setTitle(std::string title) { title_ = std::move(title); }
  void setHeader(std::vector<std::string> header);
  void addRow(std::vector<std::string> row);
  void print(std::ostream& os) const;
  std::string toString() const;

  std::size_t rowCount() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// CSV emitter; quotes cells that contain separators.
class CsvWriter {
 public:
  explicit CsvWriter(std::ostream& os) : os_(os) {}
  void writeRow(const std::vector<std::string>& cells);

 private:
  std::ostream& os_;
};

/// Fixed-point formatting with the given number of decimals ("12.383").
std::string formatFixed(double value, int decimals);

/// "12.3%" style formatting for improvement columns.
std::string formatPercent(double fraction, int decimals = 1);

}  // namespace ckd::util
