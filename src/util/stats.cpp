#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/require.hpp"

namespace ckd::util {

void RunningStats::add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
}

void RunningStats::merge(const RunningStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(count_);
  const auto n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStats::clear() { *this = RunningStats(); }

double RunningStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (samples_.empty()) return 0.0;
  double total = 0.0;
  for (double s : samples_) total += s;
  return total / static_cast<double>(samples_.size());
}

double SampleSet::quantile(double q) const {
  CKD_REQUIRE(!samples_.empty(), "quantile of an empty SampleSet");
  CKD_REQUIRE(q >= 0.0 && q <= 1.0, "quantile order must be in [0,1]");
  std::vector<double> sorted(samples_);
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace ckd::util
