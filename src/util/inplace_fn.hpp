#pragma once
// InplaceFunction: a std::function replacement for the simulator hot path.
//
// The discrete-event core schedules millions of closures per second, and the
// common capture is tiny (`this` plus a pointer or two). std::function's
// small-buffer window (16 bytes on libstdc++) misses most of them, so every
// event used to cost a malloc/free pair. InplaceFunction sizes the inline
// buffer per use site (the template parameter), falling back to the heap
// only for captures that genuinely exceed it — correctness never depends on
// the capacity choice, only throughput.
//
// Semantics:
//  * move-only by default; moving empties the source.
//  * copyable *if the bound callable is copy-constructible* (the fabric's
//    duplicate-fault path clones delivery closures). Copying a wrapper bound
//    to a move-only callable aborts at runtime via CKD_REQUIRE.
//  * empty wrappers compare equal to nullptr and abort when invoked.

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "util/require.hpp"

namespace ckd::util {

template <class Signature, std::size_t Capacity = 48>
class InplaceFunction;  // undefined; only the R(Args...) partial below exists

template <class R, class... Args, std::size_t Capacity>
class InplaceFunction<R(Args...), Capacity> {
  enum class Op { kDestroy, kMove, kCopy };
  using Invoke = R (*)(void*, Args&&...);
  /// One manager per bound type handles destroy / move-to / copy-to, so the
  /// wrapper itself stays two function pointers plus the buffer.
  using Manage = void (*)(Op, void* self, void* other);

 public:
  static constexpr std::size_t kCapacity = Capacity;
  static constexpr std::size_t kAlign = alignof(std::max_align_t);

  /// True when callables of type F live in the inline buffer (test hook for
  /// sizing decisions; heap-fallback types still work, just slower).
  template <class F>
  static constexpr bool fitsInline() {
    using FD = std::decay_t<F>;
    return sizeof(FD) <= Capacity && alignof(FD) <= kAlign;
  }

  InplaceFunction() = default;
  InplaceFunction(std::nullptr_t) {}  // NOLINT: match std::function

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InplaceFunction(F&& f) {  // NOLINT: converting, like std::function
    construct(std::forward<F>(f));
  }

  InplaceFunction(InplaceFunction&& other) noexcept { moveFrom(other); }

  InplaceFunction(const InplaceFunction& other) { copyFrom(other); }

  InplaceFunction& operator=(InplaceFunction&& other) noexcept {
    if (this != &other) {
      reset();
      moveFrom(other);
    }
    return *this;
  }

  InplaceFunction& operator=(const InplaceFunction& other) {
    if (this != &other) {
      reset();
      copyFrom(other);
    }
    return *this;
  }

  InplaceFunction& operator=(std::nullptr_t) {
    reset();
    return *this;
  }

  template <class F,
            class = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, InplaceFunction> &&
                std::is_invocable_r_v<R, std::decay_t<F>&, Args...>>>
  InplaceFunction& operator=(F&& f) {
    reset();
    construct(std::forward<F>(f));
    return *this;
  }

  ~InplaceFunction() { reset(); }

  R operator()(Args... args) const {
    CKD_REQUIRE(invoke_ != nullptr, "invoking an empty InplaceFunction");
    return invoke_(storage(), std::forward<Args>(args)...);
  }

  explicit operator bool() const { return invoke_ != nullptr; }
  friend bool operator==(const InplaceFunction& f, std::nullptr_t) {
    return f.invoke_ == nullptr;
  }

  void reset() {
    if (invoke_ != nullptr) {
      manage_(Op::kDestroy, storage(), nullptr);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

 private:
  template <class FD>
  struct InlineOps {
    static R invoke(void* s, Args&&... args) {
      return (*std::launder(static_cast<FD*>(s)))(std::forward<Args>(args)...);
    }
    static void manage(Op op, void* self, void* other) {
      FD* f = std::launder(static_cast<FD*>(self));
      switch (op) {
        case Op::kDestroy:
          f->~FD();
          break;
        case Op::kMove:
          ::new (other) FD(std::move(*f));
          f->~FD();
          break;
        case Op::kCopy:
          if constexpr (std::is_copy_constructible_v<FD>) {
            ::new (other) FD(*f);
          } else {
            CKD_REQUIRE(false,
                        "copying an InplaceFunction bound to a move-only "
                        "callable");
          }
          break;
      }
    }
  };

  template <class FD>
  struct HeapOps {
    static FD*& slot(void* s) { return *std::launder(static_cast<FD**>(s)); }
    static R invoke(void* s, Args&&... args) {
      return (*slot(s))(std::forward<Args>(args)...);
    }
    static void manage(Op op, void* self, void* other) {
      switch (op) {
        case Op::kDestroy:
          delete slot(self);
          break;
        case Op::kMove:
          ::new (other) FD*(slot(self));
          break;
        case Op::kCopy:
          if constexpr (std::is_copy_constructible_v<FD>) {
            ::new (other) FD*(new FD(*slot(self)));
          } else {
            CKD_REQUIRE(false,
                        "copying an InplaceFunction bound to a move-only "
                        "callable");
          }
          break;
      }
    }
  };

  template <class F>
  void construct(F&& f) {
    using FD = std::decay_t<F>;
    if constexpr (fitsInline<F>()) {
      ::new (storage()) FD(std::forward<F>(f));
      invoke_ = &InlineOps<FD>::invoke;
      manage_ = &InlineOps<FD>::manage;
    } else {
      static_assert(sizeof(FD*) <= Capacity,
                    "InplaceFunction capacity below pointer size");
      ::new (storage()) FD*(new FD(std::forward<F>(f)));
      invoke_ = &HeapOps<FD>::invoke;
      manage_ = &HeapOps<FD>::manage;
    }
  }

  void moveFrom(InplaceFunction& other) noexcept {
    if (other.invoke_ == nullptr) return;
    other.manage_(Op::kMove, other.storage(), storage());
    invoke_ = other.invoke_;
    manage_ = other.manage_;
    other.invoke_ = nullptr;
    other.manage_ = nullptr;
  }

  void copyFrom(const InplaceFunction& other) {
    if (other.invoke_ == nullptr) return;
    other.manage_(Op::kCopy, other.storage(), storage());
    invoke_ = other.invoke_;
    manage_ = other.manage_;
  }

  void* storage() const { return const_cast<std::byte*>(buffer_); }

  alignas(kAlign) std::byte buffer_[Capacity];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace ckd::util
