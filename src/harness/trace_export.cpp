#include "harness/trace_export.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <set>

#include "sim/causal.hpp"
#include "util/json.hpp"
#include "util/require.hpp"

namespace ckd::harness {

TraceFilter TraceFilter::parse(std::string_view spec) {
  TraceFilter filter;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    std::string_view token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    if (token.rfind("pe=", 0) == 0) {
      const std::string num(token.substr(3));
      char* end = nullptr;
      const long pe = std::strtol(num.c_str(), &end, 10);
      CKD_REQUIRE(end != num.c_str() && *end == '\0' && pe >= 0,
                  "--trace-filter pe= wants a non-negative integer");
      filter.pe_ = static_cast<int>(pe);
      continue;
    }
    filter.globs_.emplace_back(token);
  }
  return filter;
}

bool TraceFilter::globMatch(std::string_view glob, std::string_view text) {
  // Iterative `*`-only matcher: on mismatch, retry from the last star with
  // one more character swallowed.
  std::size_t g = 0, t = 0;
  std::size_t star = std::string_view::npos, mark = 0;
  while (t < text.size()) {
    if (g < glob.size() && glob[g] == '*') {
      star = g++;
      mark = t;
    } else if (g < glob.size() && glob[g] == text[t]) {
      ++g;
      ++t;
    } else if (star != std::string_view::npos) {
      g = star + 1;
      t = ++mark;
    } else {
      return false;
    }
  }
  while (g < glob.size() && glob[g] == '*') ++g;
  return g == glob.size();
}

bool TraceFilter::matches(const sim::TraceEvent& ev) const {
  if (pe_ >= 0 && ev.pe != pe_) return false;
  if (globs_.empty()) return true;
  const std::string_view tag = sim::traceTagName(ev.tag);
  for (const std::string& glob : globs_)
    if (globMatch(glob, tag)) return true;
  return false;
}

namespace {

/// Flow / async-span ids must be unique across runs: fold the run index
/// into the high bits. Chain ids are mint-order counters, far below 2^40,
/// and the composite stays below 2^53 so it round-trips through JSON.
std::uint64_t scopedId(std::size_t run, std::uint64_t id) {
  return (static_cast<std::uint64_t>(run) << 40) | id;
}

}  // namespace

void writePerfettoTrace(std::FILE* f, const std::string& bench,
                        const std::vector<ProfileReport>& profiles) {
  std::fputs("{\"traceEvents\":[", f);
  bool first = true;
  const auto emit = [f, &first](const std::string& line) {
    std::fprintf(f, "%s\n%s", first ? "" : ",", line.c_str());
    first = false;
  };
  const auto meta = [&emit](int pid, int tid, const char* kind,
                            const std::string& name) {
    std::string line = "{\"ph\":\"M\",\"pid\":" + std::to_string(pid);
    if (tid >= 0) line += ",\"tid\":" + std::to_string(tid);
    line += ",\"name\":\"";
    line += kind;
    line += "\",\"args\":{\"name\":\"" + util::jsonEscape(name) + "\"}}";
    emit(line);
  };

  for (std::size_t r = 0; r < profiles.size(); ++r) {
    const ProfileReport& p = profiles[r];
    const int pidPe = static_cast<int>(2 * r);
    const int pidCh = static_cast<int>(2 * r + 1);
    const std::string label =
        p.label.empty() ? "run" + std::to_string(r) : p.label;
    meta(pidPe, -1, "process_name", label + "/PEs");
    meta(pidCh, -1, "process_name", label + "/channels");

    std::set<int> pes;
    for (const sim::TraceEvent& ev : p.traceEvents)
      if (ev.pe >= 0) pes.insert(ev.pe);
    for (const int pe : pes)
      meta(pidPe, pe, "thread_name", "PE " + std::to_string(pe));

    // Per-PE tracks: busy slices from the scheduler's pump-duration events,
    // instants for every causal span point.
    for (const sim::TraceEvent& ev : p.traceEvents) {
      if (ev.tag == sim::TraceTag::kSchedPumpDone && ev.pe >= 0) {
        emit("{\"ph\":\"X\",\"name\":\"pump\",\"cat\":\"sched\",\"ts\":" +
             util::jsonNumber(ev.time - ev.value) +
             ",\"dur\":" + util::jsonNumber(ev.value) +
             ",\"pid\":" + std::to_string(pidPe) +
             ",\"tid\":" + std::to_string(ev.pe) + "}");
        continue;
      }
      if (ev.id == 0 || ev.pe < 0) continue;
      std::string line = "{\"ph\":\"i\",\"s\":\"t\",\"name\":\"";
      line += sim::traceTagName(ev.tag);
      line += "\",\"cat\":\"span\",\"ts\":" + util::jsonNumber(ev.time) +
              ",\"pid\":" + std::to_string(pidPe) +
              ",\"tid\":" + std::to_string(ev.pe) +
              ",\"args\":{\"id\":" + std::to_string(ev.id);
      if (ev.parent != 0) line += ",\"parent\":" + std::to_string(ev.parent);
      line += "}}";
      emit(line);
    }

    // Counter tracks from the streaming-telemetry block (ckd.metrics.v1):
    // one Perfetto "C" track per flight-recorder series, on the PE process
    // so counters line up with the per-PE timeline.
    if (p.telemetry.isObject()) {
      if (const util::JsonValue* series = p.telemetry.find("series")) {
        for (std::size_t s = 0; s < series->size(); ++s) {
          const util::JsonValue& row = series->at(s);
          const util::JsonValue* name = row.find("name");
          const util::JsonValue* points = row.find("points");
          if (name == nullptr || points == nullptr) continue;
          const std::string track = "ckd/" + name->asString();
          for (std::size_t i = 0; i < points->size(); ++i) {
            const util::JsonValue& pt = points->at(i);
            if (!pt.isArray() || pt.size() < 2) continue;
            emit("{\"ph\":\"C\",\"name\":\"" + util::jsonEscape(track) +
                 "\",\"ts\":" + util::jsonNumber(pt.at(0).asNumber()) +
                 ",\"pid\":" + std::to_string(pidPe) +
                 ",\"tid\":0,\"args\":{\"value\":" +
                 util::jsonNumber(pt.at(1).asNumber()) + "}}");
          }
        }
      }
    }

    // Channel tracks + flow arrows come from the folded causal chains.
    const sim::CausalGraph graph(p.traceEvents);
    std::set<int> channels;
    for (const sim::CausalChain& c : graph.chains())
      if (c.complete && c.start >= 0.0)
        channels.insert(c.channel >= 0 ? c.channel : -1);
    for (const int ch : channels)
      meta(pidCh, ch >= 0 ? ch : 9999, "thread_name",
           ch >= 0 ? "channel " + std::to_string(ch) : "messages");

    for (const sim::CausalChain& c : graph.chains()) {
      if (!c.complete || c.start < 0.0) continue;
      const std::string id = std::to_string(scopedId(r, c.id));
      const std::string name =
          c.kind != sim::TraceTag::kCount
              ? std::string(sim::traceTagName(c.kind))
              : std::string("chain");
      const int tid = c.channel >= 0 ? c.channel : 9999;
      const std::string common =
          ",\"cat\":\"chain\",\"id\":" + id +
          ",\"pid\":" + std::to_string(pidCh) +
          ",\"tid\":" + std::to_string(tid);
      emit("{\"ph\":\"b\",\"name\":\"" + name + "\",\"ts\":" +
           util::jsonNumber(c.start) + common +
           ",\"args\":{\"src_pe\":" + std::to_string(c.srcPe) +
           ",\"bytes\":" + util::jsonNumber(c.bytes) +
           ",\"attempts\":" + std::to_string(c.attempts) + "}}");
      emit("{\"ph\":\"e\",\"name\":\"" + name + "\",\"ts\":" +
           util::jsonNumber(c.end) + common + "}");
      // Flow arrow: issue on the sender PE -> completion on the receiver PE.
      if (c.srcPe >= 0 && c.dstPe >= 0) {
        const std::string fcommon = ",\"cat\":\"causal\",\"id\":" + id +
                                    ",\"pid\":" + std::to_string(pidPe);
        emit("{\"ph\":\"s\",\"name\":\"" + name + "\",\"ts\":" +
             util::jsonNumber(c.start) + fcommon +
             ",\"tid\":" + std::to_string(c.srcPe) + "}");
        emit("{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"" + name + "\",\"ts\":" +
             util::jsonNumber(c.end) + fcommon +
             ",\"tid\":" + std::to_string(c.dstPe) + "}");
      }
    }
  }

  std::fprintf(f,
               "\n],\"otherData\":{\"schema\":\"ckd.perfetto.v1\","
               "\"bench\":\"%s\",\"runs\":%zu}}\n",
               util::jsonEscape(bench).c_str(), profiles.size());
}

void writePerfettoTrace(const std::string& path, const std::string& bench,
                        const std::vector<ProfileReport>& profiles) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  CKD_REQUIRE(f != nullptr, "cannot open --trace-perfetto output file");
  writePerfettoTrace(f, bench, profiles);
  std::fclose(f);
}

}  // namespace ckd::harness
