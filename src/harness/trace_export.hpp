#pragma once
// Trace exporters: turn the ProfileReports' retained span events into files
// other tools understand.
//
//  * writePerfettoTrace — Chrome trace-event / Perfetto JSON ("chrome:tracing"
//    JSON object format, loadable at ui.perfetto.dev). One process per run
//    pair: pid 2r   = "<label>/PEs"      (one thread track per PE: pump busy
//                     slices + instant span events),
//          pid 2r+1 = "<label>/channels" (one async track per CkDirect
//                     channel / message class: b/e spans per causal chain).
//    Causal parent links become flow arrows (ph "s"/"f") from the chain's
//    first wire submit to its completion.
//
//  * TraceFilter — the --trace-filter grammar shared by the dump/export
//    paths: comma-separated tokens, `pe=N` restricts to one PE, every other
//    token is a tag glob (`*` wildcard, e.g. "direct.*"); multiple globs OR.
//
// Both exporters work from captured ProfileReports (label + horizon +
// traceEvents), so they compose with multi-run benches for free.

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "harness/profile.hpp"
#include "sim/trace.hpp"

namespace ckd::harness {

/// Parsed --trace-filter spec. Inactive (match-everything) when
/// default-constructed or parsed from an empty spec.
class TraceFilter {
 public:
  TraceFilter() = default;
  /// Parse "tag-glob[,tag-glob...][,pe=N]"; CKD_REQUIREs on a malformed
  /// pe= token. Order of tokens does not matter.
  static TraceFilter parse(std::string_view spec);

  bool active() const { return pe_ >= 0 || !globs_.empty(); }
  bool matches(const sim::TraceEvent& ev) const;

  /// Bare glob match, `*` matches any run (exposed for tests / reuse).
  static bool globMatch(std::string_view glob, std::string_view text);

 private:
  int pe_ = -1;                      ///< -1: any PE
  std::vector<std::string> globs_;   ///< empty: any tag
};

/// Write every profile's retained events as one Chrome trace-event JSON
/// document. `bench` names the run in otherData. CKD_REQUIREs the file opens.
void writePerfettoTrace(const std::string& path, const std::string& bench,
                        const std::vector<ProfileReport>& profiles);

/// Same, to an already-open stream (tests use open_memstream / tmpfile).
void writePerfettoTrace(std::FILE* f, const std::string& bench,
                        const std::vector<ProfileReport>& profiles);

}  // namespace ckd::harness
