#include "harness/bench_diff.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <map>
#include <sstream>

#include "harness/trace_export.hpp"
#include "util/require.hpp"
#include "util/table.hpp"

namespace ckd::harness {

namespace {

enum class Direction { kHigherWorse, kLowerWorse, kSymmetric };

/// Time-like units regress upward, rate/speedup units downward, everything
/// else (counts, bytes) is symmetric drift.
Direction unitDirection(const std::string& unit) {
  if (unit == "us" || unit == "ms" || unit == "s") return Direction::kHigherWorse;
  if (unit == "1/s" || unit == "x") return Direction::kLowerWorse;
  return Direction::kSymmetric;
}

/// Units whose value depends on the host machine's wall clock, not the
/// simulation: excluded unless --include-host.
bool unitIsHostDependent(const std::string& unit) {
  return unit == "1/s" || unit == "s" || unit == "x";
}

bool anyGlobMatches(const std::vector<std::string>& globs,
                    const std::string& key) {
  for (const std::string& g : globs)
    if (TraceFilter::globMatch(g, key)) return true;
  return false;
}

struct Entry {
  double value = 0.0;
  std::string unit;
};

std::map<std::string, Entry> indexMetrics(const util::JsonValue& doc) {
  const util::JsonValue* metrics = doc.find("metrics");
  CKD_REQUIRE(metrics != nullptr && metrics->isArray(),
              "not a ckd.bench.v1 document (no metrics array)");
  std::map<std::string, Entry> out;
  for (std::size_t i = 0; i < metrics->size(); ++i) {
    const util::JsonValue& row = metrics->at(i);
    const util::JsonValue* value = row.find("value");
    CKD_REQUIRE(value != nullptr && value->isNumber(),
                "malformed metric row (no numeric value)");
    Entry e;
    e.value = value->asNumber();
    if (const util::JsonValue* unit = row.find("unit"))
      e.unit = unit->asString();
    // Duplicate keys would make the diff ambiguous; the schema's labels
    // exist exactly to discriminate repeats of one metric name.
    const std::string key = metricKey(row);
    CKD_REQUIRE(out.emplace(key, std::move(e)).second,
                ("duplicate metric key in bench document: " + key).c_str());
  }
  return out;
}

std::string formatValue(double v) {
  // Integers (counts) print exactly; everything else gets 6 significant
  // digits, enough to see any drift the band could care about.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(0);
    os << v;
    return os.str();
  }
  std::ostringstream os;
  os.precision(6);
  os << v;
  return os.str();
}

}  // namespace

std::string_view diffStatusName(DiffStatus status) {
  switch (status) {
    case DiffStatus::kOk: return "ok";
    case DiffStatus::kImprovement: return "improvement";
    case DiffStatus::kRegression: return "REGRESSION";
    case DiffStatus::kMissingBase: return "missing-base";
    case DiffStatus::kMissingCand: return "missing-cand";
    case DiffStatus::kSkipped: return "skipped";
  }
  return "?";
}

std::string metricKey(const util::JsonValue& metricRow) {
  const util::JsonValue* name = metricRow.find("name");
  CKD_REQUIRE(name != nullptr, "metric row has no name");
  std::string key = name->asString();
  const util::JsonValue* labels = metricRow.find("labels");
  if (labels == nullptr || !labels->isObject() || labels->size() == 0)
    return key;
  // Sort label keys so the identity is insertion-order independent.
  std::vector<std::pair<std::string, std::string>> kv;
  for (const auto& [k, v] : labels->members()) {
    std::string text;
    if (v.isNumber())
      text = formatValue(v.asNumber());
    else if (v.isString())
      text = v.asString();
    else
      text = v.dump(0);
    kv.emplace_back(k, std::move(text));
  }
  std::sort(kv.begin(), kv.end());
  key += '{';
  for (std::size_t i = 0; i < kv.size(); ++i) {
    if (i) key += ',';
    key += kv[i].first + '=' + kv[i].second;
  }
  key += '}';
  return key;
}

std::vector<std::pair<std::string, double>> parseMetricTolerances(
    std::string_view spec) {
  std::vector<std::pair<std::string, double>> out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = std::min(spec.find(',', pos), spec.size());
    const std::string_view token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) continue;
    // Split on the LAST '=': metric keys carry labels ("b{x=1}"), so the
    // glob part may itself contain '=' characters.
    const std::size_t eq = token.rfind('=');
    CKD_REQUIRE(eq != std::string_view::npos && eq > 0,
                "--metric-tol wants glob=R[,glob=R...]");
    const std::string num(token.substr(eq + 1));
    char* end = nullptr;
    const double tol = std::strtod(num.c_str(), &end);
    CKD_REQUIRE(end != num.c_str() && *end == '\0' && tol >= 0.0,
                "--metric-tol tolerance must be a non-negative number");
    out.emplace_back(std::string(token.substr(0, eq)), tol);
  }
  return out;
}

DiffReport diffBench(const util::JsonValue& base, const util::JsonValue& cand,
                     const DiffOptions& opts) {
  const std::map<std::string, Entry> baseIdx = indexMetrics(base);
  const std::map<std::string, Entry> candIdx = indexMetrics(cand);

  const auto toleranceFor = [&opts](const std::string& key) {
    for (const auto& [glob, tol] : opts.metricTolerance)
      if (TraceFilter::globMatch(glob, key)) return tol;
    return opts.tolerance;
  };
  const auto filteredOut = [&opts](const std::string& key,
                                   const std::string& unit) {
    if (!opts.includeHost && unitIsHostDependent(unit)) return true;
    if (anyGlobMatches(opts.skip, key)) return true;
    if (!opts.only.empty() && !anyGlobMatches(opts.only, key)) return true;
    return false;
  };

  DiffReport report;
  for (const auto& [key, b] : baseIdx) {
    DiffRow row;
    row.key = key;
    row.unit = b.unit;
    row.base = b.value;
    if (filteredOut(key, b.unit)) {
      row.status = DiffStatus::kSkipped;
      ++report.skipped;
      report.rows.push_back(std::move(row));
      continue;
    }
    const auto it = candIdx.find(key);
    if (it == candIdx.end()) {
      row.status = DiffStatus::kMissingCand;
      ++report.missing;
      report.rows.push_back(std::move(row));
      continue;
    }
    const Entry& c = it->second;
    row.cand = c.value;
    row.tolerance = toleranceFor(key);
    row.rel = b.value != 0.0 ? (c.value - b.value) / std::fabs(b.value)
                             : (c.value != 0.0 ? (c.value > 0 ? 1.0 : -1.0)
                                               : 0.0);
    ++report.compared;
    const bool breach = std::fabs(row.rel) > row.tolerance;
    if (!breach) {
      row.status = DiffStatus::kOk;
    } else {
      switch (unitDirection(b.unit)) {
        case Direction::kHigherWorse:
          row.status = row.rel > 0.0 ? DiffStatus::kRegression
                                     : DiffStatus::kImprovement;
          break;
        case Direction::kLowerWorse:
          row.status = row.rel < 0.0 ? DiffStatus::kRegression
                                     : DiffStatus::kImprovement;
          break;
        case Direction::kSymmetric:
          row.status = DiffStatus::kRegression;
          break;
      }
      if (row.status == DiffStatus::kRegression)
        ++report.regressions;
      else
        ++report.improvements;
    }
    report.rows.push_back(std::move(row));
  }
  // Candidate-only metrics, in key order after the baseline rows.
  for (const auto& [key, c] : candIdx) {
    if (baseIdx.count(key) != 0) continue;
    DiffRow row;
    row.key = key;
    row.unit = c.unit;
    row.cand = c.value;
    if (filteredOut(key, c.unit)) {
      row.status = DiffStatus::kSkipped;
      ++report.skipped;
    } else {
      row.status = DiffStatus::kMissingBase;
      ++report.missing;
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

std::string DiffReport::toTable(bool verbose) const {
  util::TablePrinter table;
  table.setHeader({"metric", "unit", "base", "candidate", "drift", "band",
                   "status"});
  for (const DiffRow& row : rows) {
    if (!verbose &&
        (row.status == DiffStatus::kOk || row.status == DiffStatus::kSkipped))
      continue;
    const bool compared = row.status == DiffStatus::kOk ||
                          row.status == DiffStatus::kImprovement ||
                          row.status == DiffStatus::kRegression;
    table.addRow({row.key, row.unit,
                  row.status == DiffStatus::kMissingBase
                      ? "-"
                      : formatValue(row.base),
                  row.status == DiffStatus::kMissingCand
                      ? "-"
                      : formatValue(row.cand),
                  compared ? util::formatPercent(row.rel) : "-",
                  compared ? util::formatPercent(row.tolerance) : "-",
                  std::string(diffStatusName(row.status))});
  }
  std::ostringstream os;
  os << "bench_diff: " << compared << " compared, " << regressions
     << " regressions, " << improvements << " improvements, " << missing
     << " missing, " << skipped << " skipped\n";
  if (table.rowCount() > 0) os << table.toString();
  return os.str();
}

util::JsonValue DiffReport::toJson() const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", "ckd.benchdiff.v1");
  doc.set("compared", compared);
  doc.set("regressions", regressions);
  doc.set("improvements", improvements);
  doc.set("missing", missing);
  doc.set("skipped", skipped);
  util::JsonValue out = util::JsonValue::array();
  for (const DiffRow& row : rows) {
    util::JsonValue r = util::JsonValue::object();
    r.set("metric", row.key);
    r.set("unit", row.unit);
    r.set("status", std::string(diffStatusName(row.status)));
    if (row.status != DiffStatus::kMissingBase) r.set("base", row.base);
    if (row.status != DiffStatus::kMissingCand) r.set("candidate", row.cand);
    if (row.status == DiffStatus::kOk ||
        row.status == DiffStatus::kImprovement ||
        row.status == DiffStatus::kRegression) {
      r.set("drift", row.rel);
      r.set("tolerance", row.tolerance);
    }
    out.push(std::move(r));
  }
  doc.set("rows", std::move(out));
  return doc;
}

}  // namespace ckd::harness
