#pragma once
// Shared CLI + output plumbing for the bench binaries. Every bench/*.cpp
// constructs a BenchRunner from its Args and gains three flags:
//
//   --profile           print captured ProfileReports (human readable)
//   --json <file>       write metrics + profiles in the ckd.bench.v1 schema
//   --trace-dump <file> enable the engine's event ring and write the
//                       retained events in the ckd.trace.v1 schema
//   --trace-perfetto <file>
//                       enable the ring and write a Chrome trace-event /
//                       Perfetto JSON timeline (one track per PE, one per
//                       CkDirect channel, flow arrows along causal chains)
//   --trace-filter <spec>
//                       restrict --trace-dump events: comma-separated tag
//                       globs ("direct.*,sched.deliver") OR'd together,
//                       plus an optional pe=N token ("direct.*,pe=1")
//   --trace-cap <n>     ring capacity in events (default ~1M)
//   --faults <spec>     arm deterministic fault injection (fault::parseFaultSpec
//                       grammar, e.g. "drop:0.01,corrupt:0.005;class=bulk" or
//                       "pe_crash@3000;pe=2" for fail-stop faults)
//   --fault-seed <n>    RNG seed for the fault injector (default 1)
//   --checkpoint-period <us>
//                       virtual time between buddy checkpoints when pe_crash
//                       faults are armed (default MachineConfig's 100 us)
//   --heartbeat-period <us>
//                       virtual time between fail-stop heartbeats (default
//                       MachineConfig's 5 us)
//   --heartbeat-misses <n>
//                       consecutive missed beats before a PE is declared
//                       crashed (default MachineConfig's 4)
//   --scale-plan <spec> elastic lifecycle script (charm::parseScalePlan
//                       grammar, e.g. "scale_out@400;pes=8,drain@900;pe=2")
//   --shards <n>        run under the thread-sharded parallel engine with n
//                       shards (0 = classic serial engine); capped to the
//                       machine's node count at runtime construction
//   --shard-threads <n> host worker threads driving the shards (0 = one per
//                       shard up to hardware concurrency; 1 = sequential
//                       shard execution, useful for determinism A/B)
//   --pin-threads       pin shard worker threads (and the coordinator) to
//                       CPUs; the achieved pin count lands in the host JSON
//   --metrics-interval <us>
//                       arm streaming telemetry: SLO histograms on every
//                       engine plus a flight-recorder snapshot of every
//                       probe/percentile each <us> of virtual time; the
//                       ckd.metrics.v1 block lands under each profile's
//                       "telemetry" key and as Perfetto counter tracks
//   --metrics-snapshots <n>
//                       flight-recorder ring capacity (default 512; oldest
//                       snapshots drop once full)
//
// Usage:
//   util::Args args(argc, argv);
//   harness::BenchRunner runner("table1_pingpong_ib", args);
//   ...
//   runner.addMetric("rtt_us", rtt, "us", {{"variant","charm"},...});
//   if (runner.wantsProfiles()) runner.addProfile(std::move(report));
//   ...
//   return runner.finish();  // prints/writes everything, returns exit code

#include <chrono>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault.hpp"
#include "harness/profile.hpp"
#include "harness/trace_export.hpp"
#include "sim/trace.hpp"
#include "util/args.hpp"
#include "util/json.hpp"

namespace ckd::harness {

class BenchRunner {
 public:
  BenchRunner(std::string name, const util::Args& args);

  /// True when any of --profile / --json / --trace-dump / --trace-perfetto
  /// was given: the bench should capture a ProfileReport per run and
  /// addProfile() it.
  bool wantsProfiles() const { return profile_ || !jsonPath_.empty() ||
                                      traceEnabled(); }
  /// True when --trace-dump or --trace-perfetto was given: runs should
  /// enable the event ring.
  bool traceEnabled() const {
    return !tracePath_.empty() || !perfettoPath_.empty();
  }
  std::size_t traceCapacity() const { return traceCap_; }

  /// Apply the trace flags to a recorder (capacity + enable). Call before
  /// the run, while the ring is still empty.
  void configureTrace(sim::TraceRecorder& trace) const;

  /// True when --faults parsed to a non-empty plan.
  bool faultsArmed() const { return faultPlan_.armed(); }
  const fault::FaultPlan& faultPlan() const { return faultPlan_; }
  std::uint64_t faultSeed() const { return faultSeed_; }
  /// --checkpoint-period value, or a negative number when not given.
  double checkpointPeriod() const { return checkpointPeriod_; }
  /// --scale-plan spec (empty when not given).
  const std::string& scalePlan() const { return scalePlan_; }
  /// Copy the --faults plan + seed (and --checkpoint-period /
  /// --heartbeat-*, when given) into a MachineConfig (no-op when unarmed);
  /// the runtime arms the fabric at construction.
  void applyFaults(charm::MachineConfig& machine) const;
  /// Copy --scale-plan and the --heartbeat-* overrides into a
  /// MachineConfig (each a no-op when not given).
  void applyLifecycle(charm::MachineConfig& machine) const;
  /// Arm a bare fabric directly (the mini-MPI benches build their own).
  void applyFaults(net::Fabric& fabric) const;

  /// --shards / --shard-threads values (0 = legacy serial engine / auto).
  int shards() const { return shards_; }
  int shardThreads() const { return shardThreads_; }
  /// --pin-threads flag.
  bool pinThreads() const { return pinThreads_; }
  /// Copy --shards / --shard-threads into a MachineConfig (no-op when
  /// --shards was not given, leaving the classic serial engine).
  void applyEngine(charm::MachineConfig& machine) const;
  /// --metrics-interval / --metrics-snapshots values (0 = telemetry off).
  double metricsInterval() const { return metricsInterval_; }
  std::size_t metricsSnapshots() const { return metricsSnapshots_; }
  bool metricsEnabled() const { return metricsInterval_ > 0.0; }
  /// Copy --metrics-interval / --metrics-snapshots into a MachineConfig
  /// (no-op without --metrics-interval; the runtime arms telemetry at
  /// construction).
  void applyMetrics(charm::MachineConfig& machine) const;
  /// Snapshot the parallel engine's per-shard counters (executed events per
  /// shard, window count, lookahead) for the host JSON. Call after run(),
  /// while the runtime is still alive; no-op for serial runtimes.
  void recordShardStats(const charm::Runtime& rts);

  /// Record one scalar result row. `labels` is an optional JSON object of
  /// discriminators ({"variant":"ckdirect","bytes":100}).
  void addMetric(std::string name, double value, std::string unit,
                 util::JsonValue labels = util::JsonValue::object());

  /// Attach a captured profile; report.label should name the run.
  void addProfile(ProfileReport report);

  /// Print --profile output, write --json / --trace-dump files. Returns the
  /// process exit code (0 on success).
  int finish();

  /// Host-performance snapshot since this runner was constructed: wall time,
  /// events executed by every engine in the process, events/sec, peak RSS,
  /// and the buffer-pool hit/miss counters. Emitted as the "host" object of
  /// the ckd.bench.v1 JSON; also what --json consumers chart over time.
  util::JsonValue hostJson() const;

 private:
  void writeJson() const;
  void writeTraceDump() const;

  std::string name_;
  std::chrono::steady_clock::time_point wallStart_;
  std::uint64_t eventsAtStart_ = 0;
  std::uint64_t poolHitsAtStart_ = 0;
  std::uint64_t poolMissesAtStart_ = 0;
  std::uint64_t poolReleasesAtStart_ = 0;
  std::uint64_t poolUnpooledAtStart_ = 0;
  bool profile_ = false;
  std::string jsonPath_;
  std::string tracePath_;
  std::string perfettoPath_;
  TraceFilter traceFilter_;
  std::size_t traceCap_ = sim::TraceRecorder::kDefaultCapacity;
  fault::FaultPlan faultPlan_;
  std::uint64_t faultSeed_ = 1;
  double checkpointPeriod_ = -1.0;  ///< < 0: keep the MachineConfig default
  double heartbeatPeriod_ = -1.0;   ///< < 0: keep the MachineConfig default
  int heartbeatMisses_ = 0;         ///< 0: keep the MachineConfig default
  std::string scalePlan_;           ///< empty: no lifecycle script
  int shards_ = 0;                  ///< 0: classic serial engine
  int shardThreads_ = 0;            ///< 0: one thread per shard
  bool pinThreads_ = false;         ///< pin shard workers to CPUs
  double metricsInterval_ = 0.0;    ///< 0: streaming telemetry off
  std::size_t metricsSnapshots_ = 0;  ///< 0: FlightRecorder default
  util::JsonValue shardStats_;      ///< recordShardStats() snapshot (or null)

  util::JsonValue metrics_ = util::JsonValue::array();
  std::vector<ProfileReport> profiles_;
};

}  // namespace ckd::harness
