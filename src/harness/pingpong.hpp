#pragma once
// The §3 pingpong microbenchmark, in all four variants the paper reports:
// default Charm++ messages, CkDirect, MPI two-sided, and MPI_Put under
// PSCW. Each returns the average round-trip time in microseconds over
// `iterations`, for `bytes` of user payload.

#include <cstddef>

#include "charm/runtime.hpp"
#include "harness/profile.hpp"
#include "mpi/mpi_costs.hpp"
#include "sim/trace.hpp"

namespace ckd::harness {

struct PingpongConfig {
  std::size_t bytes = 100;
  int iterations = 1000;
  /// Measure between these two PEs (distinct nodes by default).
  int peA = 0;
  int peB = 1;
  /// Enable the engine's trace event ring for this run.
  bool trace = false;
  std::size_t traceCapacity = sim::TraceRecorder::kDefaultCapacity;
  /// When non-null, filled with the run's profile after the engine drains.
  ProfileReport* profile = nullptr;
};

/// Default Charm++ messages (entry-method pingpong).
double charmPingpongRtt(const charm::MachineConfig& machine,
                        const PingpongConfig& cfg);

/// CkDirect puts in both directions.
double ckdirectPingpongRtt(const charm::MachineConfig& machine,
                           const PingpongConfig& cfg);

/// MPI two-sided (isend/irecv) on the same wire.
double mpiPingpongRtt(const charm::MachineConfig& machine,
                      const mpi::MpiCosts& flavor, const PingpongConfig& cfg);

/// MPI_Put under post-start-complete-wait.
double mpiPutPingpongRtt(const charm::MachineConfig& machine,
                         const mpi::MpiCosts& flavor,
                         const PingpongConfig& cfg);

}  // namespace ckd::harness
