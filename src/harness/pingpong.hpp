#pragma once
// The §3 pingpong microbenchmark, in all four variants the paper reports:
// default Charm++ messages, CkDirect, MPI two-sided, and MPI_Put under
// PSCW. Each returns the average round-trip time in microseconds over
// `iterations`, for `bytes` of user payload.

#include <cstddef>

#include "charm/runtime.hpp"
#include "harness/profile.hpp"
#include "mpi/mpi_costs.hpp"
#include "pgas/pgas.hpp"
#include "sim/trace.hpp"

namespace ckd::harness {

struct PingpongConfig {
  std::size_t bytes = 100;
  int iterations = 1000;
  /// Measure between these two PEs (distinct nodes by default).
  int peA = 0;
  int peB = 1;
  /// Enable the engine's trace event ring for this run.
  bool trace = false;
  std::size_t traceCapacity = sim::TraceRecorder::kDefaultCapacity;
  /// When non-null, filled with the run's profile after the engine drains.
  ProfileReport* profile = nullptr;
};

/// Default Charm++ messages (entry-method pingpong).
double charmPingpongRtt(const charm::MachineConfig& machine,
                        const PingpongConfig& cfg);

/// CkDirect puts in both directions.
double ckdirectPingpongRtt(const charm::MachineConfig& machine,
                           const PingpongConfig& cfg);

/// MPI two-sided (isend/irecv) on the same wire.
double mpiPingpongRtt(const charm::MachineConfig& machine,
                      const mpi::MpiCosts& flavor, const PingpongConfig& cfg);

/// MPI_Put under post-start-complete-wait.
double mpiPutPingpongRtt(const charm::MachineConfig& machine,
                         const mpi::MpiCosts& flavor,
                         const PingpongConfig& cfg);

/// MPI two-sided over the Liu et al. RDMA channel (persistent slots with
/// credit flow control below the slot size, RDMA rendezvous above).
double mpiRdmaPingpongRtt(const charm::MachineConfig& machine,
                          const mpi::MpiCosts& flavor,
                          const PingpongConfig& cfg);

/// PGAS put-with-signal pingpong: the target's signal watcher echoes back —
/// the delivery semantics closest to a CkDirect callback. Source and
/// landing buffers live in the symmetric heap (persistent association).
double pgasPingpongRtt(const charm::MachineConfig& machine,
                       const pgas::PgasCosts& costs,
                       const PingpongConfig& cfg);

/// Mean one-way latency of a PGAS blocking put: issue to origin-observed
/// remote completion (includes the completion-ack return, which the
/// signal-based flavor above does not wait for).
double pgasBlockingPutLatency(const charm::MachineConfig& machine,
                              const pgas::PgasCosts& costs,
                              const PingpongConfig& cfg);

}  // namespace ckd::harness
