#pragma once
// bench_diff — the perf-regression gate over ckd.bench.v1 documents.
//
// diffBench() matches metrics between a BASE document (a committed
// BENCH_*.json baseline) and a CANDIDATE (a fresh run) by (name, labels),
// applies a per-metric relative tolerance band, and classifies every pair:
//
//   ok           |cand - base| within the band
//   improvement  drift beyond the band in the metric's *good* direction
//                (reported, never fatal)
//   regression   drift beyond the band in the *bad* direction (fatal)
//   missing      present on one side only (fatal under --fail-on-missing)
//
// Direction comes from the unit: time-like units ("us", "ms", "s") regress
// upward, rate/speedup units ("1/s", "x") regress downward, anything else
// ("1" counts, bytes, ...) is symmetric — for this repo's deterministic
// virtual-time metrics any drift at all is a real change, so symmetric
// bands are typically set tight or zero.
//
// Wall-clock-dependent metrics (unit "1/s", "s", or "x" — events/sec,
// wall seconds, host speedups) are machine-dependent and skipped by
// default; --include-host compares them too. Virtual-time "us" metrics and
// counts are deterministic and always compared.
//
// The CLI wrapper (bench/bench_diff.cpp) prints the classification table,
// optionally re-emits it as JSON, and exits nonzero on any fatal row — the
// contract the CI perf-regression leg is built on.

#include <string>
#include <vector>

#include "util/json.hpp"

namespace ckd::harness {

struct DiffOptions {
  /// Default relative tolerance band: |cand - base| <= tol * |base|.
  double tolerance = 0.10;
  /// Per-metric overrides: first glob (on the "name{labels}" key) that
  /// matches wins. Parsed from --metric-tol "glob=R,glob=R".
  std::vector<std::pair<std::string, double>> metricTolerance;
  /// Key globs to exclude entirely (--skip).
  std::vector<std::string> skip;
  /// When non-empty, compare only keys matching one of these (--only).
  std::vector<std::string> only;
  /// Compare wall-clock-dependent units ("1/s", "s", "x") too.
  bool includeHost = false;
  /// Metrics present on one side only become fatal instead of warnings.
  bool failOnMissing = false;
};

enum class DiffStatus {
  kOk,           ///< within the band
  kImprovement,  ///< beyond the band, good direction (non-fatal)
  kRegression,   ///< beyond the band, bad direction (fatal)
  kMissingBase,  ///< candidate-only metric
  kMissingCand,  ///< baseline-only metric
  kSkipped,      ///< excluded by unit/skip/only filters
};

std::string_view diffStatusName(DiffStatus status);

struct DiffRow {
  std::string key;   ///< "name{label=value,...}" canonical identity
  std::string unit;
  double base = 0.0;
  double cand = 0.0;
  double rel = 0.0;        ///< (cand - base) / |base| (0 when base == 0)
  double tolerance = 0.0;  ///< band applied to this row
  DiffStatus status = DiffStatus::kOk;
};

struct DiffReport {
  std::vector<DiffRow> rows;  ///< baseline order, then candidate-only rows
  int compared = 0;
  int regressions = 0;
  int improvements = 0;
  int missing = 0;
  int skipped = 0;

  /// Nonzero-exit condition for the given options.
  bool failed(const DiffOptions& opts) const {
    return regressions > 0 || (opts.failOnMissing && missing > 0);
  }

  /// Human-readable classification table (only non-ok rows unless
  /// `verbose`).
  std::string toTable(bool verbose) const;
  /// {"schema":"ckd.benchdiff.v1", summary counts, rows:[...]}.
  util::JsonValue toJson() const;
};

/// Canonical row identity: metric name plus sorted labels.
std::string metricKey(const util::JsonValue& metricRow);

/// Diff two parsed ckd.bench.v1 documents. CKD_REQUIREs on schema
/// mismatches (missing "metrics" array / malformed rows).
DiffReport diffBench(const util::JsonValue& base, const util::JsonValue& cand,
                     const DiffOptions& opts);

/// Parse "glob=R[,glob=R...]" (--metric-tol grammar).
std::vector<std::pair<std::string, double>> parseMetricTolerances(
    std::string_view spec);

}  // namespace ckd::harness
