#pragma once
// PgasWorld: a bare PGAS machine — engine + fabric + verbs + pgas::Pgas,
// no Charm++ scheduler — the setup the PGAS tests, the determinism storms,
// and the ablation bench drive. Supports both the classic single engine
// (shards = 0) and the windowed sharded engine (shards >= 1), wired exactly
// like charm::Runtime: node-aligned shard partition, lookahead = the wire
// latency floor, per-PE chain-id minting so traces and results are
// bit-identical across shard counts.

#include <cstddef>
#include <memory>
#include <vector>

#include "charm/runtime.hpp"
#include "ib/verbs.hpp"
#include "net/fabric.hpp"
#include "pgas/pgas.hpp"
#include "sim/engine.hpp"
#include "sim/parallel.hpp"

namespace ckd::harness {

class PgasWorld {
 public:
  /// Only `topology`, `netParams`, `faults`/`faultSeed`, `shards`, and
  /// `shardThreads` of the machine config are consulted.
  PgasWorld(const charm::MachineConfig& machine, pgas::PgasCosts costs,
            std::size_t segmentBytes);
  ~PgasWorld();

  PgasWorld(const PgasWorld&) = delete;
  PgasWorld& operator=(const PgasWorld&) = delete;

  pgas::Pgas& pgas() { return *pgas_; }
  ib::IbVerbs& verbs() { return *verbs_; }
  net::Fabric& fabric() { return *fabric_; }
  bool windowed() const { return parallel_ != nullptr; }
  int numPes() const { return fabric_->numPes(); }

  /// Schedule `fn` at t=0 in `pe`'s execution context (setup-time only).
  void seedOn(int pe, std::function<void()> fn);
  /// Run `fn` in serial context at the earliest globally-safe instant.
  void atSerialBoundary(std::function<void()> fn);

  /// Run to quiescence.
  void run();
  /// Completion horizon: max clock over every engine of the machine.
  sim::Time horizon() const;
  std::uint64_t executedEvents() const;

  /// Enable causal tracing on every engine of the machine.
  void enableTracing(std::size_t capacity = 0);
  /// Retained trace events, merged across shards in canonical order.
  std::vector<sim::TraceEvent> traceEvents() const;

  /// Arm streaming telemetry (mirrors charm::Runtime::enableMetrics): SLO
  /// histograms on every engine, plus a sampled flight recorder when
  /// `interval_us` > 0.
  void enableMetrics(double interval_us = 0.0, std::size_t snapshots = 0);
  bool metricsArmed() const { return metricsArmed_; }
  /// The ckd.metrics.v1 document (series + merged SLO summary).
  util::JsonValue metricsJson();

 private:
  sim::Engine engine_;
  std::unique_ptr<sim::ParallelEngine> parallel_;
  std::unique_ptr<net::Fabric> fabric_;
  std::unique_ptr<ib::IbVerbs> verbs_;
  std::unique_ptr<pgas::Pgas> pgas_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  bool metricsArmed_ = false;
};

}  // namespace ckd::harness
