#include "harness/pingpong.hpp"

#include <cstring>
#include <functional>
#include <vector>

#include "charm/maps.hpp"
#include "charm/proxy.hpp"
#include "ckdirect/ckdirect.hpp"
#include "ib/verbs.hpp"
#include "mpi/mini_mpi.hpp"
#include "util/require.hpp"

namespace ckd::harness {

namespace {

constexpr std::uint64_t kOob = 0xDEADBEEFCAFEBABEull;

void setupTrace(sim::Engine& engine, const PingpongConfig& cfg) {
  if (!cfg.trace) return;
  engine.trace().setCapacity(cfg.traceCapacity);
  engine.trace().enable();
}

/// Entry-method pingpong over default Charm++ messages. Element 0 lives on
/// peA, element 1 on peB; the reported time is what the application itself
/// would measure: from just before the send call to entry of the reply
/// handler (which includes scheduling overhead, as in the paper).
class PingPongChare final : public charm::Chare {
 public:
  charm::ArrayProxy<PingPongChare> proxy;
  charm::EntryId epPing = -1;
  int iterations = 0;

  int remaining = 0;
  sim::Time sentAt = 0.0;
  double totalRtt = 0.0;
  std::vector<std::byte> payload;

  void start(charm::Message&) {
    remaining = iterations;
    sendPing();
  }

  void sendPing() {
    sentAt = now();
    proxy[1].send(epPing, std::span<const std::byte>(payload));
  }

  void ping(charm::Message& msg) {
    if (thisIndex() == 1) {
      // Echo straight back.
      proxy[0].send(epPing, msg.payload());
      return;
    }
    totalRtt += now() - sentAt;
    if (--remaining > 0) sendPing();
  }
};

}  // namespace

double charmPingpongRtt(const charm::MachineConfig& machine,
                        const PingpongConfig& cfg) {
  CKD_REQUIRE(cfg.iterations > 0, "pingpong needs iterations");
  charm::Runtime rts(machine);
  setupTrace(rts.engine(), cfg);
  auto proxy = charm::makeArray<PingPongChare>(
      rts, "pingpong", 2,
      [&cfg](std::int64_t i) { return i == 0 ? cfg.peA : cfg.peB; },
      [](std::int64_t) { return std::make_unique<PingPongChare>(); });
  const charm::EntryId epStart =
      proxy.registerEntry("start", &PingPongChare::start);
  const charm::EntryId epPing =
      proxy.registerEntry("ping", &PingPongChare::ping);
  for (std::int64_t i = 0; i < 2; ++i) {
    PingPongChare& el = proxy[i].local();
    el.proxy = proxy;
    el.epPing = epPing;
    el.iterations = cfg.iterations;
    el.payload.assign(cfg.bytes, std::byte{0});
  }
  rts.seed([proxy, epStart]() { proxy[0].send(epStart); });
  rts.run();
  if (cfg.profile) *cfg.profile = captureProfile(rts);
  return proxy[0].local().totalRtt / cfg.iterations;
}

double ckdirectPingpongRtt(const charm::MachineConfig& machine,
                           const PingpongConfig& cfg) {
  CKD_REQUIRE(cfg.iterations > 0, "pingpong needs iterations");
  CKD_REQUIRE(cfg.bytes >= 8, "CkDirect payloads carry the 8-byte sentinel");
  charm::Runtime rts(machine);
  setupTrace(rts.engine(), cfg);

  struct State {
    std::vector<std::byte> sendA, recvA, sendB, recvB;
    direct::Handle ab, ba;
    int remaining = 0;
    sim::Time sentAt = 0.0;
    double totalRtt = 0.0;
  };
  auto st = std::make_shared<State>();
  st->sendA.assign(cfg.bytes, std::byte{1});
  st->recvA.assign(cfg.bytes, std::byte{0});
  st->sendB.assign(cfg.bytes, std::byte{2});
  st->recvB.assign(cfg.bytes, std::byte{0});
  st->remaining = cfg.iterations;

  // Channel A->B: receiver (peB) creates the handle; sender associates.
  st->ab = direct::createHandle(rts, cfg.peB, st->recvB.data(), cfg.bytes,
                                kOob, [st]() {
                                  // Runs on peB when the put has landed.
                                  direct::ready(st->ab);
                                  direct::put(st->ba);
                                });
  st->ba = direct::createHandle(
      rts, cfg.peA, st->recvA.data(), cfg.bytes, kOob, [st, &rts, cfg]() {
        // Runs on peA: one round trip complete.
        st->totalRtt +=
            rts.scheduler(cfg.peA).currentTime() - st->sentAt;
        direct::ready(st->ba);
        if (--st->remaining > 0) {
          st->sentAt = rts.scheduler(cfg.peA).currentTime();
          direct::put(st->ab);
        }
      });
  direct::assocLocal(st->ab, cfg.peA, st->sendA.data());
  direct::assocLocal(st->ba, cfg.peB, st->sendB.data());

  rts.seed([st]() {
    st->sentAt = 0.0;
    direct::put(st->ab);
  });
  rts.run();
  if (cfg.profile) *cfg.profile = captureProfile(rts);
  return st->totalRtt / cfg.iterations;
}

namespace {

double mpiPingpongImpl(const charm::MachineConfig& machine,
                       const mpi::MpiCosts& flavor, const PingpongConfig& cfg,
                       bool rdmaChannel) {
  CKD_REQUIRE(cfg.iterations > 0, "pingpong needs iterations");
  sim::Engine engine;
  setupTrace(engine, cfg);
  EngineTelemetry telemetry(engine, machine);
  net::Fabric fabric(engine, machine.topology, machine.netParams);
  // Mini-MPI rides the raw fabric (no reliability layer): armed drop faults
  // model an unreliable transport and may stall the run (see README).
  if (machine.faults.armed())
    fabric.installFaults(machine.faults, machine.faultSeed);
  mpi::MiniMpi mp(fabric, flavor);
  if (rdmaChannel) mp.enableRdmaChannel();

  std::vector<std::byte> bufA(cfg.bytes, std::byte{0});
  std::vector<std::byte> bufB(cfg.bytes, std::byte{0});
  int remaining = cfg.iterations;
  double total = 0.0;
  sim::Time sentAt = 0.0;

  std::function<void()> iterate = [&]() {
    sentAt = engine.now();
    mp.irecv(cfg.peA, cfg.peB, /*tag=*/0, bufA.data(), cfg.bytes,
             [&](const mpi::MiniMpi::RecvResult&) {
               total += engine.now() - sentAt;
               if (--remaining > 0) iterate();
             });
    mp.irecv(cfg.peB, cfg.peA, /*tag=*/0, bufB.data(), cfg.bytes,
             [&](const mpi::MiniMpi::RecvResult&) {
               mp.isend(cfg.peB, cfg.peA, /*tag=*/0, bufB.data(), cfg.bytes);
             });
    mp.isend(cfg.peA, cfg.peB, /*tag=*/0, bufA.data(), cfg.bytes);
  };
  engine.at(0.0, [&]() { iterate(); });
  engine.run();
  if (cfg.profile) {
    *cfg.profile = captureFabricProfile(engine, fabric);
    telemetry.finishInto(cfg.profile);
  }
  return total / cfg.iterations;
}

}  // namespace

double mpiPingpongRtt(const charm::MachineConfig& machine,
                      const mpi::MpiCosts& flavor, const PingpongConfig& cfg) {
  return mpiPingpongImpl(machine, flavor, cfg, /*rdmaChannel=*/false);
}

double mpiRdmaPingpongRtt(const charm::MachineConfig& machine,
                          const mpi::MpiCosts& flavor,
                          const PingpongConfig& cfg) {
  return mpiPingpongImpl(machine, flavor, cfg, /*rdmaChannel=*/true);
}

double mpiPutPingpongRtt(const charm::MachineConfig& machine,
                         const mpi::MpiCosts& flavor,
                         const PingpongConfig& cfg) {
  CKD_REQUIRE(cfg.iterations > 0, "pingpong needs iterations");
  sim::Engine engine;
  setupTrace(engine, cfg);
  EngineTelemetry telemetry(engine, machine);
  net::Fabric fabric(engine, machine.topology, machine.netParams);
  if (machine.faults.armed())
    fabric.installFaults(machine.faults, machine.faultSeed);
  mpi::MiniMpi mp(fabric, flavor);

  std::vector<std::byte> winBufA(cfg.bytes, std::byte{0});
  std::vector<std::byte> winBufB(cfg.bytes, std::byte{0});
  std::vector<std::byte> srcA(cfg.bytes, std::byte{1});
  std::vector<std::byte> srcB(cfg.bytes, std::byte{2});
  const mpi::MiniMpi::WinId winA =
      mp.createWindow(cfg.peA, winBufA.data(), cfg.bytes);
  const mpi::MiniMpi::WinId winB =
      mp.createWindow(cfg.peB, winBufB.data(), cfg.bytes);

  int remaining = cfg.iterations;
  int repliesLeft = cfg.iterations;
  double total = 0.0;
  sim::Time sentAt = 0.0;

  // B's side: expose winB, and on each completed exposure put the reply.
  std::function<void()> armB = [&]() {
    mp.winPost(winB, {cfg.peA});
    mp.winWait(winB, [&]() {
      mp.winStart(winA, cfg.peB, [&]() {
        mp.put(winA, cfg.peB, 0, srcB.data(), cfg.bytes);
        mp.winComplete(winA, cfg.peB);
        if (--repliesLeft > 0) armB();
      });
    });
  };

  // A's side: expose winA for the reply, access winB for the request.
  std::function<void()> iterA = [&]() {
    sentAt = engine.now();
    mp.winPost(winA, {cfg.peB});
    mp.winWait(winA, [&]() {
      total += engine.now() - sentAt;
      if (--remaining > 0) iterA();
    });
    mp.winStart(winB, cfg.peA, [&]() {
      mp.put(winB, cfg.peA, 0, srcA.data(), cfg.bytes);
      mp.winComplete(winB, cfg.peA);
    });
  };

  engine.at(0.0, [&]() {
    armB();
    iterA();
  });
  engine.run();
  if (cfg.profile) {
    *cfg.profile = captureFabricProfile(engine, fabric);
    telemetry.finishInto(cfg.profile);
  }
  return total / cfg.iterations;
}

double pgasPingpongRtt(const charm::MachineConfig& machine,
                       const pgas::PgasCosts& costs,
                       const PingpongConfig& cfg) {
  CKD_REQUIRE(cfg.iterations > 0, "pingpong needs iterations");
  sim::Engine engine;
  setupTrace(engine, cfg);
  EngineTelemetry telemetry(engine, machine);
  net::Fabric fabric(engine, machine.topology, machine.netParams);
  if (machine.faults.armed())
    fabric.installFaults(machine.faults, machine.faultSeed);
  ib::IbVerbs verbs(fabric);
  const std::size_t segment = std::max<std::size_t>(4096, 4 * cfg.bytes);
  pgas::Pgas pg(verbs, costs, segment);
  // Everything lives in the symmetric heap: no registration-cache traffic.
  const pgas::Gptr slot = pg.alloc(cfg.bytes);  // landing buffer, every PE
  const pgas::Gptr src = pg.alloc(cfg.bytes);   // source buffer, every PE
  std::memset(pg.addr(cfg.peA, src), 1, cfg.bytes);
  std::memset(pg.addr(cfg.peB, src), 2, cfg.bytes);

  int remaining = cfg.iterations;
  double total = 0.0;
  sim::Time sentAt = 0.0;

  std::function<void()> iterate = [&]() {
    sentAt = engine.now();
    pg.putSignal(cfg.peA, cfg.peB, slot, pg.addr(cfg.peA, src), cfg.bytes,
                 [&]() {
                   // Signal watcher on peB: echo straight back.
                   pg.putSignal(cfg.peB, cfg.peA, slot, pg.addr(cfg.peB, src),
                                cfg.bytes, [&]() {
                                  total += engine.now() - sentAt;
                                  if (--remaining > 0) iterate();
                                });
                 });
  };
  engine.at(0.0, [&]() { iterate(); });
  engine.run();
  if (cfg.profile) {
    *cfg.profile = captureFabricProfile(engine, fabric);
    telemetry.finishInto(cfg.profile);
  }
  return total / cfg.iterations;
}

double pgasBlockingPutLatency(const charm::MachineConfig& machine,
                              const pgas::PgasCosts& costs,
                              const PingpongConfig& cfg) {
  CKD_REQUIRE(cfg.iterations > 0, "pingpong needs iterations");
  sim::Engine engine;
  setupTrace(engine, cfg);
  EngineTelemetry telemetry(engine, machine);
  net::Fabric fabric(engine, machine.topology, machine.netParams);
  if (machine.faults.armed())
    fabric.installFaults(machine.faults, machine.faultSeed);
  ib::IbVerbs verbs(fabric);
  const std::size_t segment = std::max<std::size_t>(4096, 4 * cfg.bytes);
  pgas::Pgas pg(verbs, costs, segment);
  const pgas::Gptr slot = pg.alloc(cfg.bytes);
  const pgas::Gptr src = pg.alloc(cfg.bytes);
  std::memset(pg.addr(cfg.peA, src), 1, cfg.bytes);

  int remaining = cfg.iterations;
  double total = 0.0;
  sim::Time sentAt = 0.0;

  std::function<void()> iterate = [&]() {
    sentAt = engine.now();
    pg.putBlocking(cfg.peA, cfg.peB, slot, pg.addr(cfg.peA, src), cfg.bytes,
                   [&]() {
                     total += engine.now() - sentAt;
                     if (--remaining > 0) iterate();
                   });
  };
  engine.at(0.0, [&]() { iterate(); });
  engine.run();
  if (cfg.profile) {
    *cfg.profile = captureFabricProfile(engine, fabric);
    telemetry.finishInto(cfg.profile);
  }
  return total / cfg.iterations;
}

}  // namespace ckd::harness
