#pragma once
// Machine presets matching the paper's testbeds:
//   Abe      — NCSA, 8-core Clovertown nodes, InfiniBand (Tables 1, Figs 3/4)
//   T3       — NCSA, 4-core Woodcrest nodes, InfiniBand (Fig 2a)
//   Surveyor — ANL Blue Gene/P (Tables 2, Figs 2b/3/5)

#include "charm/runtime.hpp"

namespace ckd::harness {

/// Abe with `numPes` PEs spread `pesPerNode` per node (the paper uses 8 for
/// the simple apps, 2 cores/node for the OpenAtom runs to "highlight
/// network effects", and 1 process/node for the pingpong).
charm::MachineConfig abeMachine(int numPes, int pesPerNode = 8);

charm::MachineConfig t3Machine(int numPes, int pesPerNode = 4);

/// Blue Gene/P partition with `numPes` PEs (4 cores per node, VN mode).
charm::MachineConfig surveyorMachine(int numPes, int pesPerNode = 4);

/// Abe variant on a growable ElasticTopology (same wire/runtime costs):
/// supports lifecycle scale-out (`--scale-plan scale_out@...`). Constructs
/// the LifecycleManager even without a plan (config.elastic = true) so
/// programmatic requestScaleOut / requestDrain work.
charm::MachineConfig elasticAbeMachine(int numPes, int pesPerNode = 8);

/// Surveyor variant with the lifecycle supervisor armed (drain/retire only
/// — the torus does not grow).
charm::MachineConfig elasticSurveyorMachine(int numPes, int pesPerNode = 4);

}  // namespace ckd::harness
