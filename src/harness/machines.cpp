#include "harness/machines.hpp"

#include "net/cost_params.hpp"
#include "topo/elastic.hpp"
#include "topo/fat_tree.hpp"
#include "topo/torus3d.hpp"
#include "util/require.hpp"

namespace ckd::harness {

charm::MachineConfig abeMachine(int numPes, int pesPerNode) {
  CKD_REQUIRE(numPes > 0 && numPes % pesPerNode == 0,
              "PE count must be a multiple of PEs per node");
  charm::MachineConfig cfg;
  cfg.topology =
      std::make_shared<topo::FatTree>(numPes / pesPerNode, pesPerNode);
  cfg.netParams = net::abeParams();
  cfg.costs = charm::abeRuntimeCosts();
  cfg.layer = charm::LayerKind::kInfiniband;
  return cfg;
}

charm::MachineConfig t3Machine(int numPes, int pesPerNode) {
  CKD_REQUIRE(numPes > 0 && numPes % pesPerNode == 0,
              "PE count must be a multiple of PEs per node");
  charm::MachineConfig cfg;
  cfg.topology =
      std::make_shared<topo::FatTree>(numPes / pesPerNode, pesPerNode);
  cfg.netParams = net::t3Params();
  cfg.costs = charm::t3RuntimeCosts();
  cfg.layer = charm::LayerKind::kInfiniband;
  return cfg;
}

charm::MachineConfig surveyorMachine(int numPes, int pesPerNode) {
  charm::MachineConfig cfg;
  cfg.topology = std::make_shared<topo::Torus3D>(
      topo::Torus3D::forPes(numPes, pesPerNode));
  cfg.netParams = net::surveyorParams();
  cfg.costs = charm::surveyorRuntimeCosts();
  cfg.layer = charm::LayerKind::kBlueGene;
  return cfg;
}

charm::MachineConfig elasticAbeMachine(int numPes, int pesPerNode) {
  CKD_REQUIRE(numPes > 0 && numPes % pesPerNode == 0,
              "PE count must be a multiple of PEs per node");
  charm::MachineConfig cfg;
  cfg.topology = std::make_shared<topo::ElasticTopology>(numPes / pesPerNode,
                                                         pesPerNode);
  cfg.netParams = net::abeParams();
  cfg.costs = charm::abeRuntimeCosts();
  cfg.layer = charm::LayerKind::kInfiniband;
  cfg.elastic = true;
  return cfg;
}

charm::MachineConfig elasticSurveyorMachine(int numPes, int pesPerNode) {
  charm::MachineConfig cfg = surveyorMachine(numPes, pesPerNode);
  cfg.elastic = true;
  return cfg;
}

}  // namespace ckd::harness
