#include "harness/pgas_world.hpp"

#include <algorithm>
#include <utility>

#include "net/lookahead.hpp"
#include "util/require.hpp"

namespace ckd::harness {

PgasWorld::PgasWorld(const charm::MachineConfig& machine,
                     pgas::PgasCosts costs, std::size_t segmentBytes) {
  CKD_REQUIRE(machine.topology != nullptr, "PgasWorld requires a topology");
  if (machine.shards > 0) {
    // Same node-aligned partition and lookahead as charm::Runtime, so the
    // determinism gate's shard-count invariance argument carries over.
    const topo::Topology& topo = *machine.topology;
    const int nodes = topo.numNodes();
    const int nShards = std::min(machine.shards, nodes);
    std::vector<int> shardOf(static_cast<std::size_t>(topo.numPes()));
    for (int pe = 0; pe < topo.numPes(); ++pe)
      shardOf[static_cast<std::size_t>(pe)] = static_cast<int>(
          static_cast<std::int64_t>(topo.nodeOf(pe)) * nShards / nodes);
    sim::ParallelEngine::Config pcfg;
    pcfg.shards = nShards;
    pcfg.threads = machine.shardThreads;
    pcfg.lookahead = machine.netParams.wireLatencyFloor();
    pcfg.pinThreads = machine.pinShardThreads;
    // Mirror charm::Runtime: adaptive per-destination windows only for
    // serial-quiet runs (fault plans schedule serial events).
    pcfg.adaptive = !machine.faults.armed();
    if (pcfg.adaptive)
      pcfg.pairLookahead = net::shardLookaheadMatrix(
          topo, machine.netParams, shardOf, nShards);
    parallel_ = std::make_unique<sim::ParallelEngine>(pcfg, std::move(shardOf));
    parallel_->serialEngine().trace().setPerPeMinting(
        &parallel_->mintCounters());
    for (int s = 0; s < parallel_->shards(); ++s)
      parallel_->shardEngine(s).trace().setPerPeMinting(
          &parallel_->mintCounters());
  }
  fabric_ = std::make_unique<net::Fabric>(
      parallel_ ? parallel_->serialEngine() : engine_, machine.topology,
      machine.netParams);
  if (parallel_) fabric_->attachParallel(parallel_.get());
  if (machine.faults.armed())
    fabric_->installFaults(machine.faults, machine.faultSeed);
  verbs_ = std::make_unique<ib::IbVerbs>(*fabric_);
  pgas_ = std::make_unique<pgas::Pgas>(*verbs_, std::move(costs),
                                       segmentBytes);
}

PgasWorld::~PgasWorld() = default;

void PgasWorld::seedOn(int pe, std::function<void()> fn) {
  if (parallel_)
    parallel_->atLocal(pe, 0.0, std::move(fn));
  else
    engine_.at(0.0, std::move(fn));
}

void PgasWorld::atSerialBoundary(std::function<void()> fn) {
  if (parallel_)
    parallel_->atSerialBoundary(std::move(fn));
  else
    fn();
}

void PgasWorld::run() {
  if (parallel_)
    parallel_->run();
  else
    engine_.run();
}

sim::Time PgasWorld::horizon() const {
  return parallel_ ? parallel_->horizon() : engine_.now();
}

std::uint64_t PgasWorld::executedEvents() const {
  return parallel_ ? parallel_->executedEvents() : engine_.executedEvents();
}

void PgasWorld::enableTracing(std::size_t capacity) {
  const auto arm = [capacity](sim::Engine& eng) {
    if (capacity != 0) eng.trace().setCapacity(capacity);
    eng.trace().enable();
  };
  if (!parallel_) {
    arm(engine_);
    return;
  }
  arm(parallel_->serialEngine());
  for (int s = 0; s < parallel_->shards(); ++s) arm(parallel_->shardEngine(s));
}

std::vector<sim::TraceEvent> PgasWorld::traceEvents() const {
  return parallel_ ? parallel_->mergedTrace() : engine_.trace().snapshot();
}

}  // namespace ckd::harness
