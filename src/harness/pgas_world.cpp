#include "harness/pgas_world.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "net/lookahead.hpp"
#include "obs/flight_recorder.hpp"
#include "util/require.hpp"

namespace ckd::harness {

PgasWorld::PgasWorld(const charm::MachineConfig& machine,
                     pgas::PgasCosts costs, std::size_t segmentBytes) {
  CKD_REQUIRE(machine.topology != nullptr, "PgasWorld requires a topology");
  if (machine.shards > 0) {
    // Same node-aligned partition and lookahead as charm::Runtime, so the
    // determinism gate's shard-count invariance argument carries over.
    const topo::Topology& topo = *machine.topology;
    const int nodes = topo.numNodes();
    const int nShards = std::min(machine.shards, nodes);
    std::vector<int> shardOf(static_cast<std::size_t>(topo.numPes()));
    for (int pe = 0; pe < topo.numPes(); ++pe)
      shardOf[static_cast<std::size_t>(pe)] = static_cast<int>(
          static_cast<std::int64_t>(topo.nodeOf(pe)) * nShards / nodes);
    sim::ParallelEngine::Config pcfg;
    pcfg.shards = nShards;
    pcfg.threads = machine.shardThreads;
    pcfg.lookahead = machine.netParams.wireLatencyFloor();
    pcfg.pinThreads = machine.pinShardThreads;
    // Mirror charm::Runtime: adaptive per-destination windows only for
    // serial-quiet runs (fault plans schedule serial events).
    pcfg.adaptive = !machine.faults.armed();
    if (pcfg.adaptive)
      pcfg.pairLookahead = net::shardLookaheadMatrix(
          topo, machine.netParams, shardOf, nShards);
    parallel_ = std::make_unique<sim::ParallelEngine>(pcfg, std::move(shardOf));
    parallel_->serialEngine().trace().setPerPeMinting(
        &parallel_->mintCounters());
    for (int s = 0; s < parallel_->shards(); ++s)
      parallel_->shardEngine(s).trace().setPerPeMinting(
          &parallel_->mintCounters());
  }
  fabric_ = std::make_unique<net::Fabric>(
      parallel_ ? parallel_->serialEngine() : engine_, machine.topology,
      machine.netParams);
  if (parallel_) fabric_->attachParallel(parallel_.get());
  if (machine.faults.armed())
    fabric_->installFaults(machine.faults, machine.faultSeed);
  verbs_ = std::make_unique<ib::IbVerbs>(*fabric_);
  pgas_ = std::make_unique<pgas::Pgas>(*verbs_, std::move(costs),
                                       segmentBytes);
}

PgasWorld::~PgasWorld() = default;

void PgasWorld::seedOn(int pe, std::function<void()> fn) {
  if (parallel_)
    parallel_->atLocal(pe, 0.0, std::move(fn));
  else
    engine_.at(0.0, std::move(fn));
}

void PgasWorld::atSerialBoundary(std::function<void()> fn) {
  if (parallel_)
    parallel_->atSerialBoundary(std::move(fn));
  else
    fn();
}

void PgasWorld::run() {
  if (parallel_)
    parallel_->run();
  else
    engine_.run();
}

sim::Time PgasWorld::horizon() const {
  return parallel_ ? parallel_->horizon() : engine_.now();
}

std::uint64_t PgasWorld::executedEvents() const {
  return parallel_ ? parallel_->executedEvents() : engine_.executedEvents();
}

void PgasWorld::enableTracing(std::size_t capacity) {
  const auto arm = [capacity](sim::Engine& eng) {
    if (capacity != 0) eng.trace().setCapacity(capacity);
    eng.trace().enable();
  };
  if (!parallel_) {
    arm(engine_);
    return;
  }
  arm(parallel_->serialEngine());
  for (int s = 0; s < parallel_->shards(); ++s) arm(parallel_->shardEngine(s));
}

std::vector<sim::TraceEvent> PgasWorld::traceEvents() const {
  return parallel_ ? parallel_->mergedTrace() : engine_.trace().snapshot();
}

void PgasWorld::enableMetrics(double interval_us, std::size_t snapshots) {
  const auto forEachEngine = [this](auto&& fn) {
    if (!parallel_) {
      fn(engine_);
      return;
    }
    fn(parallel_->serialEngine());
    for (int s = 0; s < parallel_->shards(); ++s)
      fn(parallel_->shardEngine(s));
  };
  forEachEngine([](sim::Engine& eng) { eng.metrics().arm(); });
  metricsArmed_ = true;
  if (interval_us <= 0.0) return;

  flight_ = std::make_unique<obs::FlightRecorder>();
  if (snapshots != 0) flight_->setCapacity(snapshots);
  flight_->setInterval(interval_us);
  flight_->addProbe("events", "1",
                    [this]() { return static_cast<double>(executedEvents()); });
  flight_->addProbe("retransmits", "1", [this, forEachEngine]() {
    std::uint64_t n = 0;
    forEachEngine([&n](sim::Engine& eng) {
      n += eng.trace().count(sim::TraceTag::kRelRetransmit);
    });
    return static_cast<double>(n);
  });
  flight_->addProbe("trace.ring", "1", [this, forEachEngine]() {
    std::size_t n = 0;
    forEachEngine([&n](sim::Engine& eng) { n += eng.trace().ringSize(); });
    return static_cast<double>(n);
  });
  if (parallel_) {
    flight_->addProbe("windows", "1", [this]() {
      return static_cast<double>(parallel_->windows());
    });
    flight_->addProbe("shard.lag_us", "us", [this]() {
      sim::Time lo = std::numeric_limits<sim::Time>::infinity();
      sim::Time hi = -std::numeric_limits<sim::Time>::infinity();
      for (int s = 0; s < parallel_->shards(); ++s) {
        const sim::Time t = parallel_->shardEngine(s).now();
        lo = std::min(lo, t);
        hi = std::max(hi, t);
      }
      return parallel_->shards() > 0 ? hi - lo : 0.0;
    });
  }
  for (std::size_t k = 0; k < obs::kSloCount; ++k) {
    const obs::Slo kind = static_cast<obs::Slo>(k);
    flight_->watch(
        "slo." + std::string(obs::sloName(kind)),
        [this, forEachEngine, kind](std::vector<std::uint64_t>& counts) {
          std::uint64_t total = 0;
          forEachEngine([&](sim::Engine& eng) {
            total += eng.metrics().slo(kind).addCounts(counts);
          });
          return total;
        });
  }
  if (parallel_)
    parallel_->attachSampler(flight_.get());
  else
    engine_.attachSampler(flight_.get());
}

util::JsonValue PgasWorld::metricsJson() {
  util::JsonValue doc;
  if (flight_ != nullptr) {
    doc = flight_->toJson();
  } else {
    doc = util::JsonValue::object();
    doc.set("schema", "ckd.metrics.v1");
    doc.set("interval_us", 0.0);
    doc.set("snapshots", 0);
    doc.set("dropped", 0);
    doc.set("series", util::JsonValue::array());
  }
  obs::MetricsRegistry merged;
  if (!parallel_) {
    merged.mergeFrom(engine_.metrics());
  } else {
    merged.mergeFrom(parallel_->serialEngine().metrics());
    for (int s = 0; s < parallel_->shards(); ++s)
      merged.mergeFrom(parallel_->shardEngine(s).metrics());
  }
  doc.set("slo", merged.toJson());
  return doc;
}

}  // namespace ckd::harness
