#include "harness/profile.hpp"

#include <sstream>

#include "ckdirect/ckdirect.hpp"
#include "util/table.hpp"

namespace ckd::harness {

ProfileReport captureProfile(charm::Runtime& rts) {
  ProfileReport report;
  report.pes = rts.numPes();
  report.horizon_us = rts.now();
  for (int pe = 0; pe < report.pes; ++pe) {
    report.utilization.add(
        rts.processor(pe).utilization(report.horizon_us));
    report.messagesPerPe.add(
        static_cast<double>(rts.scheduler(pe).messagesProcessed()));
    report.pumpsPerPe.add(static_cast<double>(rts.scheduler(pe).pumps()));
  }
  report.fabricMessages = rts.fabric().messagesSubmitted();
  report.fabricBytes = rts.fabric().bytesSubmitted();
  report.runtimeMessages = rts.messagesSent();
  if (rts.extension()) {
    const auto& mgr = direct::Manager::of(rts);
    report.ckdirectPuts = mgr.putsIssued();
    report.ckdirectCallbacks = mgr.callbacksInvoked();
  }
  return report;
}

std::string ProfileReport::toString() const {
  std::ostringstream out;
  out << "profile: " << pes << " PEs over "
      << util::formatFixed(horizon_us, 1) << " us\n";
  out << "  utilization   min " << util::formatPercent(utilization.min())
      << "  mean " << util::formatPercent(utilization.mean()) << "  max "
      << util::formatPercent(utilization.max()) << "\n";
  out << "  sched msgs/PE mean " << util::formatFixed(messagesPerPe.mean(), 1)
      << "  (pumps/PE mean " << util::formatFixed(pumpsPerPe.mean(), 1)
      << ")\n";
  out << "  fabric        " << fabricMessages << " transfers, " << fabricBytes
      << " bytes; runtime messages " << runtimeMessages << "\n";
  if (ckdirectPuts > 0) {
    out << "  ckdirect      " << ckdirectPuts << " puts, "
        << ckdirectCallbacks << " callbacks\n";
  }
  return out.str();
}

}  // namespace ckd::harness
