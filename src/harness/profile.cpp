#include "harness/profile.hpp"

#include <sstream>

#include "charm/checkpoint.hpp"
#include "charm/lifecycle.hpp"
#include "ckdirect/ckdirect.hpp"
#include "util/table.hpp"

namespace ckd::harness {

namespace {

void captureTraceMetrics(ProfileReport& report, const sim::TraceRecorder& trace) {
  for (std::size_t i = 0; i < sim::kLayerCount; ++i)
    report.layerTime_us[i] = trace.layerTime(static_cast<sim::Layer>(i));
  report.layerSum_us = trace.totalLayerTime();
  report.layerCoverage =
      report.horizon_us > 0.0 ? report.layerSum_us / report.horizon_us : 0.0;
  for (std::size_t i = 0; i < sim::kTraceTagCount; ++i)
    report.tagCounts[i] = trace.count(static_cast<sim::TraceTag>(i));
  report.pollHist = trace.pollQueueHistogram();
  report.rendezvousRtt_us = trace.rendezvousRtt();
  report.deliveryAttempts = trace.deliveryAttempts();
  report.traceRecorded = trace.recorded();
  report.traceDropped = trace.dropped();
  if (trace.enabled()) report.traceEvents = trace.snapshot();
  if (!report.traceEvents.empty()) {
    const sim::CausalGraph graph(report.traceEvents);
    report.causalChains = graph.chains().size();
    const std::vector<sim::CausalChain> path = graph.criticalPath();
    report.criticalPathHops = path.size();
    report.criticalPath_us = graph.criticalPathSpan();
    report.putLatency = graph.putLatency();
    report.msgLatency = graph.messageLatency();
  }
}

}  // namespace

ProfileReport captureProfile(charm::Runtime& rts) {
  ProfileReport report;
  report.pes = rts.numPes();
  report.horizon_us = rts.now();
  for (int pe = 0; pe < report.pes; ++pe) {
    report.utilization.add(
        rts.processor(pe).utilization(report.horizon_us));
    report.messagesPerPe.add(
        static_cast<double>(rts.scheduler(pe).messagesProcessed()));
    report.pumpsPerPe.add(static_cast<double>(rts.scheduler(pe).pumps()));
  }
  report.fabricMessages = rts.fabric().messagesSubmitted();
  report.fabricBytes = rts.fabric().bytesSubmitted();
  report.runtimeMessages = rts.messagesSent();
  // peek, not of(): profiling must never create the manager it observes.
  if (const direct::Manager* mgr = direct::Manager::peek(rts)) {
    report.ckdirectPuts = mgr->putsIssued();
    report.ckdirectCallbacks = mgr->callbacksInvoked();
  }
  if (const charm::CheckpointManager* ckpt = rts.checkpoints()) {
    report.checkpointsTaken = ckpt->checkpointsTaken();
    report.checkpointBytes = ckpt->bytesPacked();
    report.restarts = ckpt->restarts();
    report.recoveryUs = ckpt->recoveryUs();
    report.heartbeatPeriodUs = ckpt->beatPeriodUs();
    report.heartbeatMisses = ckpt->missedBeats();
  }
  if (const sim::ParallelEngine* par = rts.parallelEngine()) {
    report.shards = par->shards();
    report.windows = par->windows();
    report.adaptiveWindows = par->adaptive();
    report.pinnedThreads = par->pinnedThreads();
    const sim::ParallelEngine::RingStats rings = par->ringStats();
    report.ringPushes = rings.pushes;
    report.ringBatches = rings.batches;
    report.ringOverflow = rings.overflow;
  }
  if (const charm::LifecycleManager* life = rts.lifecycle()) {
    report.scaleOuts = life->scaleOuts();
    report.drainsCompleted = life->drainsCompleted();
    report.elementsMigrated = life->elementsMigrated();
    report.handoffBytes = life->handoffBytesShipped();
    report.handoffRetries = life->handoffRetries();
    report.migrationsAborted = life->migrationsAborted();
  }
  captureTraceMetrics(report, rts.engine().trace());
  if (rts.metricsArmed()) report.telemetry = rts.metricsJson();
  return report;
}

ProfileReport captureFabricProfile(sim::Engine& engine, net::Fabric& fabric) {
  ProfileReport report;
  report.pes = fabric.numPes();
  report.horizon_us = engine.now();
  report.fabricMessages = fabric.messagesSubmitted();
  report.fabricBytes = fabric.bytesSubmitted();
  captureTraceMetrics(report, engine.trace());
  return report;
}

EngineTelemetry::EngineTelemetry(sim::Engine& engine,
                                 const charm::MachineConfig& machine)
    : engine_(engine) {
  if (machine.metricsInterval_us <= 0.0) return;
  engine.metrics().arm();
  flight_ = std::make_unique<obs::FlightRecorder>();
  if (machine.metricsSnapshots != 0)
    flight_->setCapacity(machine.metricsSnapshots);
  flight_->setInterval(machine.metricsInterval_us);
  flight_->addProbe("events", "1", [&engine]() {
    return static_cast<double>(engine.executedEvents());
  });
  flight_->addProbe("trace.ring", "1", [&engine]() {
    return static_cast<double>(engine.trace().ringSize());
  });
  for (std::size_t k = 0; k < obs::kSloCount; ++k) {
    const auto kind = static_cast<obs::Slo>(k);
    flight_->watch("slo." + std::string(obs::sloName(kind)),
                   &engine.metrics().slo(kind));
  }
  engine.attachSampler(flight_.get());
}

EngineTelemetry::~EngineTelemetry() {
  if (flight_ != nullptr) engine_.attachSampler(nullptr);
}

void EngineTelemetry::finishInto(ProfileReport* report) const {
  if (report == nullptr || flight_ == nullptr) return;
  util::JsonValue doc = flight_->toJson();
  doc.set("slo", engine_.metrics().toJson());
  report->telemetry = std::move(doc);
}

std::string ProfileReport::toString() const {
  std::ostringstream out;
  out << "profile";
  if (!label.empty()) out << " [" << label << "]";
  out << ": " << pes << " PEs over " << util::formatFixed(horizon_us, 1)
      << " us\n";
  if (utilization.count() > 0) {
    out << "  utilization   min " << util::formatPercent(utilization.min())
        << "  mean " << util::formatPercent(utilization.mean()) << "  max "
        << util::formatPercent(utilization.max()) << "\n";
    out << "  sched msgs/PE mean " << util::formatFixed(messagesPerPe.mean(), 1)
        << "  (pumps/PE mean " << util::formatFixed(pumpsPerPe.mean(), 1)
        << ")\n";
  }
  out << "  fabric        " << fabricMessages << " transfers, " << fabricBytes
      << " bytes; runtime messages " << runtimeMessages << "\n";
  if (ckdirectPuts > 0) {
    out << "  ckdirect      " << ckdirectPuts << " puts, "
        << ckdirectCallbacks << " callbacks\n";
  }
  if (layerSum_us > 0.0) {
    out << "  layers        ";
    for (std::size_t i = 0; i < sim::kLayerCount; ++i) {
      if (i) out << "  ";
      out << sim::layerName(static_cast<sim::Layer>(i)) << " "
          << util::formatFixed(layerTime_us[i], 2);
    }
    out << "  (sum " << util::formatFixed(layerSum_us, 2) << " us, "
        << util::formatPercent(layerCoverage) << " of horizon)\n";
  }
  if (rendezvousRtt_us.count() > 0) {
    out << "  rendezvous    " << rendezvousRtt_us.count() << " round trips, "
        << "rtt mean " << util::formatFixed(rendezvousRtt_us.mean(), 2)
        << " us (min " << util::formatFixed(rendezvousRtt_us.min(), 2)
        << ", max " << util::formatFixed(rendezvousRtt_us.max(), 2) << ")\n";
  }
  const auto tag = [this](sim::TraceTag t) {
    return tagCounts[static_cast<std::size_t>(t)];
  };
  const std::uint64_t faultsInjected =
      tag(sim::TraceTag::kFaultDrop) + tag(sim::TraceTag::kFaultDelay) +
      tag(sim::TraceTag::kFaultDuplicate) + tag(sim::TraceTag::kFaultCorrupt) +
      tag(sim::TraceTag::kFaultQpError) +
      tag(sim::TraceTag::kFaultRegionInvalid);
  if (faultsInjected > 0) {
    out << "  faults        " << faultsInjected << " injected: drop "
        << tag(sim::TraceTag::kFaultDrop) << ", delay "
        << tag(sim::TraceTag::kFaultDelay) << ", dup "
        << tag(sim::TraceTag::kFaultDuplicate) << ", corrupt "
        << tag(sim::TraceTag::kFaultCorrupt) << ", qp_error "
        << tag(sim::TraceTag::kFaultQpError) << ", region_invalidate "
        << tag(sim::TraceTag::kFaultRegionInvalid) << "\n";
  }
  if (tag(sim::TraceTag::kRelRetransmit) > 0 ||
      tag(sim::TraceTag::kRelError) > 0 || deliveryAttempts.count() > 0) {
    out << "  reliability   " << tag(sim::TraceTag::kRelRetransmit)
        << " retransmits, " << tag(sim::TraceTag::kRelDupDrop)
        << " dup drops, " << tag(sim::TraceTag::kRelOooDrop)
        << " ooo drops, " << tag(sim::TraceTag::kRelError) << " errors";
    if (deliveryAttempts.count() > 0) {
      out << "; attempts/msg mean "
          << util::formatFixed(deliveryAttempts.mean(), 3) << " (max "
          << util::formatFixed(deliveryAttempts.max(), 0) << ")";
    }
    out << "\n";
  }
  if (checkpointsTaken > 0 || restarts > 0) {
    out << "  checkpoints   " << checkpointsTaken << " taken ("
        << checkpointBytes << " bytes packed), " << restarts << " restarts";
    if (restarts > 0)
      out << ", recovery " << util::formatFixed(recoveryUs, 2) << " us";
    out << "; crashes " << tag(sim::TraceTag::kFaultPeCrash)
        << ", stale naks " << tag(sim::TraceTag::kRelStaleNak)
        << ", stale epoch drops " << tag(sim::TraceTag::kStaleEpochDrop)
        << "\n";
  }
  if (shards > 0) {
    out << "  shards        " << shards << " over " << windows << " windows ("
        << (adaptiveWindows ? "adaptive" : "global") << " ceilings); ring "
        << ringPushes << " pushes in " << ringBatches << " batches, "
        << ringOverflow << " overflowed";
    if (pinnedThreads > 0) out << "; " << pinnedThreads << " threads pinned";
    out << "\n";
  }
  if (scaleOuts > 0 || drainsCompleted > 0 || migrationsAborted > 0) {
    out << "  lifecycle     " << scaleOuts << " scale-outs, "
        << drainsCompleted << " drains (" << elementsMigrated
        << " elements, " << handoffBytes << " bytes shipped, "
        << handoffRetries << " retries), " << migrationsAborted
        << " migrations aborted\n";
  }
  bool anyPoll = false;
  for (const std::uint64_t n : pollHist) anyPoll |= n > 0;
  if (anyPoll) {
    out << "  poll queue    len histogram";
    for (std::size_t i = 0; i < pollHist.size(); ++i)
      if (pollHist[i] > 0) out << "  [" << i << "]=" << pollHist[i];
    out << "\n";
  }
  if (causalChains > 0) {
    out << "  causal        " << causalChains << " chains; critical path "
        << util::formatFixed(criticalPath_us, 2) << " us over "
        << criticalPathHops << " hops";
    if (horizon_us > 0.0)
      out << " (" << util::formatPercent(criticalPath_us / horizon_us)
          << " of horizon)";
    out << "\n";
    const auto split = [&out](const char* name,
                              const sim::LatencySummary& s) {
      if (s.count == 0) return;
      out << "  " << name << s.count << " chains, mean "
          << util::formatFixed(s.mean.total_us, 3) << " us = queue "
          << util::formatFixed(s.mean.queue_us, 3) << " + wire "
          << util::formatFixed(s.mean.wire_us, 3) << " + poll "
          << util::formatFixed(s.mean.poll_us, 3) << " + handler "
          << util::formatFixed(s.mean.handler_us, 3) << "\n";
    };
    split("put latency   ", putLatency);
    split("msg latency   ", msgLatency);
  }
  return out.str();
}

util::JsonValue toJson(const ProfileReport& report) {
  using util::JsonValue;
  const auto statsJson = [](const util::RunningStats& s) {
    JsonValue v = JsonValue::object();
    v.set("count", JsonValue(s.count()));
    v.set("mean", JsonValue(s.mean()));
    v.set("min", JsonValue(s.min()));
    v.set("max", JsonValue(s.max()));
    return v;
  };

  JsonValue obj = JsonValue::object();
  if (!report.label.empty()) obj.set("label", JsonValue(report.label));
  obj.set("pes", JsonValue(report.pes));
  obj.set("horizon_us", JsonValue(report.horizon_us));
  if (report.utilization.count() > 0) {
    obj.set("utilization", statsJson(report.utilization));
    obj.set("messages_per_pe", statsJson(report.messagesPerPe));
    obj.set("pumps_per_pe", statsJson(report.pumpsPerPe));
  }
  JsonValue fabric = JsonValue::object();
  fabric.set("messages", JsonValue(report.fabricMessages));
  fabric.set("bytes", JsonValue(report.fabricBytes));
  obj.set("fabric", std::move(fabric));
  obj.set("runtime_messages", JsonValue(report.runtimeMessages));
  if (report.ckdirectPuts > 0 || report.ckdirectCallbacks > 0) {
    JsonValue ckd = JsonValue::object();
    ckd.set("puts", JsonValue(report.ckdirectPuts));
    ckd.set("callbacks", JsonValue(report.ckdirectCallbacks));
    obj.set("ckdirect", std::move(ckd));
  }

  JsonValue layers = JsonValue::object();
  for (std::size_t i = 0; i < sim::kLayerCount; ++i)
    layers.set(std::string(sim::layerName(static_cast<sim::Layer>(i))) + "_us",
               JsonValue(report.layerTime_us[i]));
  layers.set("sum_us", JsonValue(report.layerSum_us));
  layers.set("coverage", JsonValue(report.layerCoverage));
  obj.set("layers", std::move(layers));

  JsonValue tags = JsonValue::object();
  for (std::size_t i = 0; i < sim::kTraceTagCount; ++i) {
    if (report.tagCounts[i] == 0) continue;
    tags.set(std::string(sim::traceTagName(static_cast<sim::TraceTag>(i))),
             JsonValue(report.tagCounts[i]));
  }
  obj.set("tag_counts", std::move(tags));

  bool anyPoll = false;
  for (const std::uint64_t n : report.pollHist) anyPoll |= n > 0;
  if (anyPoll) {
    JsonValue hist = JsonValue::array();
    for (const std::uint64_t n : report.pollHist) hist.push(JsonValue(n));
    obj.set("poll_queue_hist", std::move(hist));
  }
  if (report.rendezvousRtt_us.count() > 0)
    obj.set("rendezvous_rtt_us", statsJson(report.rendezvousRtt_us));

  const auto tag = [&report](sim::TraceTag t) {
    return report.tagCounts[static_cast<std::size_t>(t)];
  };
  const std::uint64_t faultsInjected =
      tag(sim::TraceTag::kFaultDrop) + tag(sim::TraceTag::kFaultDelay) +
      tag(sim::TraceTag::kFaultDuplicate) + tag(sim::TraceTag::kFaultCorrupt) +
      tag(sim::TraceTag::kFaultQpError) +
      tag(sim::TraceTag::kFaultRegionInvalid);
  if (faultsInjected > 0) {
    JsonValue faults = JsonValue::object();
    faults.set("injected", JsonValue(faultsInjected));
    faults.set("drop", JsonValue(tag(sim::TraceTag::kFaultDrop)));
    faults.set("delay", JsonValue(tag(sim::TraceTag::kFaultDelay)));
    faults.set("duplicate", JsonValue(tag(sim::TraceTag::kFaultDuplicate)));
    faults.set("corrupt", JsonValue(tag(sim::TraceTag::kFaultCorrupt)));
    faults.set("qp_error", JsonValue(tag(sim::TraceTag::kFaultQpError)));
    faults.set("region_invalidate",
               JsonValue(tag(sim::TraceTag::kFaultRegionInvalid)));
    obj.set("faults", std::move(faults));
  }
  if (tag(sim::TraceTag::kRelRetransmit) > 0 ||
      tag(sim::TraceTag::kRelError) > 0 ||
      report.deliveryAttempts.count() > 0) {
    JsonValue rel = JsonValue::object();
    rel.set("retransmits", JsonValue(tag(sim::TraceTag::kRelRetransmit)));
    rel.set("acks", JsonValue(tag(sim::TraceTag::kRelAck)));
    rel.set("dup_drops", JsonValue(tag(sim::TraceTag::kRelDupDrop)));
    rel.set("ooo_drops", JsonValue(tag(sim::TraceTag::kRelOooDrop)));
    rel.set("errors", JsonValue(tag(sim::TraceTag::kRelError)));
    if (report.deliveryAttempts.count() > 0)
      rel.set("attempts_per_msg", statsJson(report.deliveryAttempts));
    obj.set("reliability", std::move(rel));
  }
  if (report.checkpointsTaken > 0 || report.restarts > 0) {
    JsonValue ckpt = JsonValue::object();
    ckpt.set("taken", JsonValue(report.checkpointsTaken));
    ckpt.set("bytes_packed", JsonValue(report.checkpointBytes));
    ckpt.set("restarts", JsonValue(report.restarts));
    ckpt.set("recovery_us", JsonValue(report.recoveryUs));
    ckpt.set("heartbeat_period_us", JsonValue(report.heartbeatPeriodUs));
    ckpt.set("heartbeat_misses", JsonValue(report.heartbeatMisses));
    ckpt.set("pe_crashes", JsonValue(tag(sim::TraceTag::kFaultPeCrash)));
    ckpt.set("crash_detects", JsonValue(tag(sim::TraceTag::kCrashDetect)));
    ckpt.set("stale_naks", JsonValue(tag(sim::TraceTag::kRelStaleNak)));
    ckpt.set("stale_epoch_drops",
             JsonValue(tag(sim::TraceTag::kStaleEpochDrop)));
    obj.set("checkpoint", std::move(ckpt));
  }
  if (report.shards > 0) {
    JsonValue eng = JsonValue::object();
    eng.set("shards", JsonValue(report.shards));
    eng.set("windows", JsonValue(report.windows));
    eng.set("adaptive", JsonValue(report.adaptiveWindows));
    eng.set("pinned_threads", JsonValue(report.pinnedThreads));
    JsonValue ring = JsonValue::object();
    ring.set("pushes", JsonValue(report.ringPushes));
    ring.set("batches", JsonValue(report.ringBatches));
    ring.set("overflow", JsonValue(report.ringOverflow));
    eng.set("ring", std::move(ring));
    obj.set("parallel", std::move(eng));
  }
  if (report.scaleOuts > 0 || report.drainsCompleted > 0 ||
      report.migrationsAborted > 0) {
    JsonValue life = JsonValue::object();
    life.set("scale_outs", JsonValue(report.scaleOuts));
    life.set("drains_completed", JsonValue(report.drainsCompleted));
    life.set("elements_migrated", JsonValue(report.elementsMigrated));
    life.set("handoff_bytes", JsonValue(report.handoffBytes));
    life.set("handoff_retries", JsonValue(report.handoffRetries));
    life.set("migrations_aborted", JsonValue(report.migrationsAborted));
    obj.set("lifecycle", std::move(life));
  }

  if (report.traceRecorded > 0) {
    JsonValue trace = JsonValue::object();
    trace.set("recorded", JsonValue(report.traceRecorded));
    trace.set("dropped", JsonValue(report.traceDropped));
    trace.set("retained", JsonValue(report.traceEvents.size()));
    obj.set("trace", std::move(trace));
  }
  if (report.causalChains > 0) {
    const auto latencyJson = [](const sim::LatencySummary& s) {
      JsonValue v = JsonValue::object();
      v.set("count", JsonValue(s.count));
      v.set("mean_us", JsonValue(s.mean.total_us));
      v.set("queue_us", JsonValue(s.mean.queue_us));
      v.set("wire_us", JsonValue(s.mean.wire_us));
      v.set("poll_us", JsonValue(s.mean.poll_us));
      v.set("handler_us", JsonValue(s.mean.handler_us));
      return v;
    };
    JsonValue causal = JsonValue::object();
    causal.set("chains", JsonValue(report.causalChains));
    causal.set("critical_path_us", JsonValue(report.criticalPath_us));
    causal.set("critical_path_hops", JsonValue(report.criticalPathHops));
    if (report.putLatency.count > 0)
      causal.set("put_latency", latencyJson(report.putLatency));
    if (report.msgLatency.count > 0)
      causal.set("msg_latency", latencyJson(report.msgLatency));
    obj.set("causal", std::move(causal));
  }
  if (!report.telemetry.isNull()) obj.set("telemetry", report.telemetry);
  return obj;
}

}  // namespace ckd::harness
