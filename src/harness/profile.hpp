#pragma once
// Post-run profiling: summarizes where a simulation spent its (virtual)
// time — per-PE utilization, scheduler activity, fabric traffic, CkDirect
// polling — in a compact report the benches can print with --profile.
// Roughly the role Projections plays for real Charm++ runs.

#include <string>

#include "charm/runtime.hpp"
#include "util/stats.hpp"

namespace ckd::harness {

struct ProfileReport {
  int pes = 0;
  sim::Time horizon_us = 0.0;          ///< rts.now() at capture
  util::RunningStats utilization;      ///< busy fraction per PE
  util::RunningStats messagesPerPe;    ///< scheduler messages per PE
  util::RunningStats pumpsPerPe;       ///< scheduler pumps per PE
  std::uint64_t fabricMessages = 0;
  std::uint64_t fabricBytes = 0;
  std::uint64_t runtimeMessages = 0;
  std::uint64_t ckdirectPuts = 0;      ///< 0 when CkDirect unused
  std::uint64_t ckdirectCallbacks = 0;

  /// Multi-line human-readable summary.
  std::string toString() const;
};

/// Capture a report from a finished (or paused) runtime.
ProfileReport captureProfile(charm::Runtime& rts);

}  // namespace ckd::harness
