#pragma once
// Post-run profiling: summarizes where a simulation spent its (virtual)
// time — per-PE utilization, scheduler activity, fabric traffic, CkDirect
// polling, and the per-layer time attribution collected by the engine's
// TraceRecorder — in a compact report the benches can print with --profile
// or serialize with --json. Roughly the role Projections plays for real
// Charm++ runs.

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "charm/runtime.hpp"
#include "obs/flight_recorder.hpp"
#include "net/fabric.hpp"
#include "sim/causal.hpp"
#include "sim/trace.hpp"
#include "util/json.hpp"
#include "util/stats.hpp"

namespace ckd::harness {

struct ProfileReport {
  std::string label;                   ///< which run this report describes
  int pes = 0;
  sim::Time horizon_us = 0.0;          ///< engine.now() at capture
  util::RunningStats utilization;      ///< busy fraction per PE
  util::RunningStats messagesPerPe;    ///< scheduler messages per PE
  util::RunningStats pumpsPerPe;       ///< scheduler pumps per PE
  std::uint64_t fabricMessages = 0;
  std::uint64_t fabricBytes = 0;
  std::uint64_t runtimeMessages = 0;
  std::uint64_t ckdirectPuts = 0;      ///< 0 when CkDirect unused
  std::uint64_t ckdirectCallbacks = 0;

  /// Checkpoint/restart counters (all zero unless pe_crash faults armed a
  /// CheckpointManager for the run).
  std::uint64_t checkpointsTaken = 0;
  std::uint64_t checkpointBytes = 0;   ///< chare state packed to buddies
  std::uint64_t restarts = 0;
  sim::Time recoveryUs = 0.0;          ///< crash -> restored, summed
  sim::Time heartbeatPeriodUs = 0.0;   ///< effective --heartbeat-period
  int heartbeatMisses = 0;             ///< effective --heartbeat-misses

  /// Parallel-engine counters (all zero/false on classic serial runs).
  int shards = 0;                      ///< 0 when the serial engine ran
  std::uint64_t windows = 0;           ///< conservative windows executed
  bool adaptiveWindows = false;        ///< per-destination LBTS ceilings on
  int pinnedThreads = 0;               ///< workers pinned via --pin-threads
  std::uint64_t ringPushes = 0;        ///< cross-shard ring entries published
  std::uint64_t ringBatches = 0;       ///< release-stores that published them
  std::uint64_t ringOverflow = 0;      ///< entries spilled to chained segments

  /// Elastic lifecycle counters (all zero unless the run had a
  /// LifecycleManager).
  std::uint64_t scaleOuts = 0;
  std::uint64_t drainsCompleted = 0;
  std::uint64_t elementsMigrated = 0;
  std::uint64_t handoffBytes = 0;
  std::uint64_t handoffRetries = 0;
  std::uint64_t migrationsAborted = 0;

  /// Virtual time attributed to each runtime tier, indexed by sim::Layer.
  std::array<sim::Time, sim::kLayerCount> layerTime_us{};
  sim::Time layerSum_us = 0.0;
  /// layerSum / horizon; ~1.0 on serial workloads, >1 with overlap.
  double layerCoverage = 0.0;

  /// Per-tag trace point counts, indexed by sim::TraceTag.
  std::array<std::uint64_t, sim::kTraceTagCount> tagCounts{};
  /// Poll-queue length histogram (log2 buckets, see TraceRecorder).
  std::array<std::uint64_t, sim::TraceRecorder::kPollHistBuckets> pollHist{};
  /// Rendezvous RTS -> ack round-trip times.
  util::RunningStats rendezvousRtt_us;
  /// Wire transmissions consumed per acknowledged reliable message (1.0
  /// everywhere means no retransmission happened; only populated when a
  /// fault plan was armed).
  util::RunningStats deliveryAttempts;

  /// Ring-buffer state plus the retained events (empty unless the trace
  /// ring was enabled for the run).
  std::uint64_t traceRecorded = 0;
  std::uint64_t traceDropped = 0;
  std::vector<sim::TraceEvent> traceEvents;

  /// Causal-chain headline numbers, derived from traceEvents (all zero
  /// unless the event ring was enabled). criticalPath_us is the span of the
  /// longest parent-link chain; the latency summaries carry exact-sum
  /// per-layer splits (see sim::CausalGraph).
  std::size_t causalChains = 0;
  sim::Time criticalPath_us = 0.0;
  std::size_t criticalPathHops = 0;
  sim::LatencySummary putLatency;
  sim::LatencySummary msgLatency;

  /// Streaming-telemetry block (ckd.metrics.v1: flight-recorder series +
  /// merged SLO summary); null unless the run armed metrics
  /// (--metrics-interval). Rendered as Perfetto counter tracks by
  /// writePerfettoTrace and embedded under "telemetry" in the bench JSON.
  util::JsonValue telemetry;

  /// Multi-line human-readable summary.
  std::string toString() const;
};

/// Capture a report from a finished (or paused) runtime.
ProfileReport captureProfile(charm::Runtime& rts);

/// Capture from a bare engine + fabric (the mini-MPI benches have no
/// charm::Runtime); utilization / scheduler stats stay empty.
ProfileReport captureFabricProfile(sim::Engine& engine, net::Fabric& fabric);

/// Streaming telemetry for bare-engine drivers (the mini-MPI / PGAS benches
/// have no charm::Runtime to arm it). Construction arms the engine's SLO
/// registry and attaches a flight recorder when the machine config carries
/// a --metrics-interval; finishInto() lands the ckd.metrics.v1 block in the
/// profile after the run. Destruction detaches the sampler, so the helper
/// may die before the engine.
class EngineTelemetry {
 public:
  EngineTelemetry(sim::Engine& engine, const charm::MachineConfig& machine);
  ~EngineTelemetry();
  EngineTelemetry(const EngineTelemetry&) = delete;
  EngineTelemetry& operator=(const EngineTelemetry&) = delete;

  bool armed() const { return flight_ != nullptr; }
  /// No-op when `report` is null or telemetry was never armed.
  void finishInto(ProfileReport* report) const;

 private:
  sim::Engine& engine_;
  std::unique_ptr<obs::FlightRecorder> flight_;
};

/// Serialize to the documented BENCH_*.json "profile" schema.
util::JsonValue toJson(const ProfileReport& report);

}  // namespace ckd::harness
