#include "harness/bench_runner.hpp"

#include <cstdio>
#include <iostream>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

#include "sim/engine.hpp"
#include "util/pool.hpp"
#include "util/require.hpp"

namespace {

/// Peak resident set size in KiB, 0 where getrusage is unavailable.
long peakRssKb() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return usage.ru_maxrss / 1024;  // macOS reports bytes
#else
    return usage.ru_maxrss;  // Linux reports KiB
#endif
  }
#endif
  return 0;
}

}  // namespace

namespace ckd::harness {

BenchRunner::BenchRunner(std::string name, const util::Args& args)
    : name_(std::move(name)) {
  profile_ = args.getBool("profile", false);
  jsonPath_ = args.get("json", "");
  tracePath_ = args.get("trace-dump", "");
  perfettoPath_ = args.get("trace-perfetto", "");
  traceFilter_ = TraceFilter::parse(args.get("trace-filter", ""));
  traceCap_ = static_cast<std::size_t>(args.getInt(
      "trace-cap",
      static_cast<std::int64_t>(sim::TraceRecorder::kDefaultCapacity)));
  CKD_REQUIRE(traceCap_ > 0, "--trace-cap must be positive");
  const std::string faultSpec = args.get("faults", "");
  if (!faultSpec.empty()) faultPlan_ = fault::parseFaultSpec(faultSpec);
  faultSeed_ = static_cast<std::uint64_t>(args.getInt("fault-seed", 1));
  checkpointPeriod_ = args.getDouble("checkpoint-period", -1.0);
  CKD_REQUIRE(checkpointPeriod_ != 0.0, "--checkpoint-period must be positive");
  heartbeatPeriod_ = args.getDouble("heartbeat-period", -1.0);
  CKD_REQUIRE(heartbeatPeriod_ != 0.0, "--heartbeat-period must be positive");
  heartbeatMisses_ = static_cast<int>(args.getInt("heartbeat-misses", 0));
  CKD_REQUIRE(heartbeatMisses_ >= 0, "--heartbeat-misses must be positive");
  scalePlan_ = args.get("scale-plan", "");
  shards_ = static_cast<int>(args.getInt("shards", 0));
  CKD_REQUIRE(shards_ >= 0, "--shards must be non-negative");
  shardThreads_ = static_cast<int>(args.getInt("shard-threads", 0));
  CKD_REQUIRE(shardThreads_ >= 0, "--shard-threads must be non-negative");
  pinThreads_ = args.getBool("pin-threads", false);
  metricsInterval_ = args.getDouble("metrics-interval", 0.0);
  CKD_REQUIRE(metricsInterval_ >= 0.0, "--metrics-interval must be >= 0");
  metricsSnapshots_ =
      static_cast<std::size_t>(args.getInt("metrics-snapshots", 0));

  // Host-performance baseline: everything in hostJson() is measured relative
  // to runner construction, so flag parsing and static init stay out of the
  // events/sec denominator. Pool counters aggregate every live pool (thread
  // defaults plus the parallel engine's per-shard instances).
  wallStart_ = std::chrono::steady_clock::now();
  eventsAtStart_ = sim::Engine::processExecutedEvents();
  const util::BufferPool::Stats pool = util::BufferPool::processStats();
  poolHitsAtStart_ = pool.hits;
  poolMissesAtStart_ = pool.misses;
  poolReleasesAtStart_ = pool.releases;
  poolUnpooledAtStart_ = pool.unpooled;
}

util::JsonValue BenchRunner::hostJson() const {
  const std::chrono::duration<double, std::milli> wall =
      std::chrono::steady_clock::now() - wallStart_;
  const std::uint64_t events =
      sim::Engine::processExecutedEvents() - eventsAtStart_;
  const double wallSec = wall.count() / 1000.0;
  const util::BufferPool::Stats stats = util::BufferPool::processStats();

  util::JsonValue host = util::JsonValue::object();
  host.set("wall_ms", util::JsonValue(wall.count()));
  host.set("events_executed",
           util::JsonValue(static_cast<double>(events)));
  host.set("events_per_sec",
           util::JsonValue(wallSec > 0.0 ? static_cast<double>(events) / wallSec
                                         : 0.0));
  host.set("peak_rss_kb", util::JsonValue(static_cast<double>(peakRssKb())));
  host.set("pools_enabled",
           util::JsonValue(util::BufferPool::instance().enabled()));
  host.set("pool_hits", util::JsonValue(static_cast<double>(
                            stats.hits - poolHitsAtStart_)));
  host.set("pool_misses", util::JsonValue(static_cast<double>(
                              stats.misses - poolMissesAtStart_)));
  host.set("pool_releases", util::JsonValue(static_cast<double>(
                                stats.releases - poolReleasesAtStart_)));
  host.set("pool_unpooled", util::JsonValue(static_cast<double>(
                                stats.unpooled - poolUnpooledAtStart_)));
  if (shardStats_.isObject()) host.set("shards", shardStats_);
  return host;
}

void BenchRunner::applyFaults(charm::MachineConfig& machine) const {
  if (!faultsArmed()) return;
  machine.faults = faultPlan_;
  machine.faultSeed = faultSeed_;
  if (checkpointPeriod_ > 0.0) machine.checkpointPeriod_us = checkpointPeriod_;
  if (heartbeatPeriod_ > 0.0) machine.heartbeatPeriod_us = heartbeatPeriod_;
  if (heartbeatMisses_ > 0) machine.heartbeatMisses = heartbeatMisses_;
}

void BenchRunner::applyLifecycle(charm::MachineConfig& machine) const {
  if (!scalePlan_.empty()) machine.scalePlan = scalePlan_;
  if (heartbeatPeriod_ > 0.0) machine.heartbeatPeriod_us = heartbeatPeriod_;
  if (heartbeatMisses_ > 0) machine.heartbeatMisses = heartbeatMisses_;
}

void BenchRunner::applyFaults(net::Fabric& fabric) const {
  if (!faultsArmed()) return;
  fabric.installFaults(faultPlan_, faultSeed_);
}

void BenchRunner::applyEngine(charm::MachineConfig& machine) const {
  if (shards_ <= 0) return;
  machine.shards = shards_;
  machine.shardThreads = shardThreads_;
  machine.pinShardThreads = pinThreads_;
}

void BenchRunner::applyMetrics(charm::MachineConfig& machine) const {
  if (metricsInterval_ <= 0.0) return;
  machine.metricsInterval_us = metricsInterval_;
  if (metricsSnapshots_ > 0) machine.metricsSnapshots = metricsSnapshots_;
}

void BenchRunner::recordShardStats(const charm::Runtime& rts) {
  const sim::ParallelEngine* par = rts.parallelEngine();
  if (par == nullptr) return;
  util::JsonValue stats = util::JsonValue::object();
  stats.set("count", util::JsonValue(static_cast<double>(par->shards())));
  stats.set("threads", util::JsonValue(static_cast<double>(par->threads())));
  stats.set("windows", util::JsonValue(static_cast<double>(par->windows())));
  stats.set("lookahead_us", util::JsonValue(par->lookahead()));
  util::JsonValue events = util::JsonValue::array();
  for (int i = 0; i < par->shards(); ++i)
    events.push(util::JsonValue(
        static_cast<double>(par->shardExecutedEvents(i))));
  stats.set("events", std::move(events));
  stats.set("serial_events", util::JsonValue(static_cast<double>(
                                 par->serialEngine().executedEvents())));
  stats.set("adaptive", util::JsonValue(par->adaptive()));
  stats.set("pinned_threads",
            util::JsonValue(static_cast<double>(par->pinnedThreads())));
  const sim::ParallelEngine::RingStats rings = par->ringStats();
  util::JsonValue ring = util::JsonValue::object();
  ring.set("pushes", util::JsonValue(static_cast<double>(rings.pushes)));
  ring.set("batches", util::JsonValue(static_cast<double>(rings.batches)));
  ring.set("overflow", util::JsonValue(static_cast<double>(rings.overflow)));
  stats.set("ring", std::move(ring));
  util::JsonValue pools = util::JsonValue::array();
  for (int i = 0; i < par->shards(); ++i) {
    const util::BufferPool::Stats& ps =
        const_cast<sim::ParallelEngine*>(par)->shardPool(i).stats();
    util::JsonValue row = util::JsonValue::object();
    row.set("hits", util::JsonValue(static_cast<double>(ps.hits)));
    row.set("misses", util::JsonValue(static_cast<double>(ps.misses)));
    row.set("releases", util::JsonValue(static_cast<double>(ps.releases)));
    pools.push(std::move(row));
  }
  stats.set("pools", std::move(pools));
  shardStats_ = std::move(stats);
}

void BenchRunner::configureTrace(sim::TraceRecorder& trace) const {
  if (!traceEnabled()) return;
  trace.setCapacity(traceCap_);
  trace.enable();
}

void BenchRunner::addMetric(std::string name, double value, std::string unit,
                            util::JsonValue labels) {
  util::JsonValue row = util::JsonValue::object();
  row.set("name", util::JsonValue(std::move(name)));
  row.set("value", util::JsonValue(value));
  row.set("unit", util::JsonValue(std::move(unit)));
  if (labels.isObject() && labels.size() > 0)
    row.set("labels", std::move(labels));
  metrics_.push(std::move(row));
}

void BenchRunner::addProfile(ProfileReport report) {
  profiles_.push_back(std::move(report));
}

int BenchRunner::finish() {
  if (profile_) {
    for (const ProfileReport& report : profiles_)
      std::cout << report.toString();
  }
  if (!jsonPath_.empty()) writeJson();
  if (!tracePath_.empty()) writeTraceDump();
  if (!perfettoPath_.empty()) {
    writePerfettoTrace(perfettoPath_, name_, profiles_);
    std::fprintf(stderr, "[bench] wrote %s\n", perfettoPath_.c_str());
  }
  return 0;
}

void BenchRunner::writeJson() const {
  util::JsonValue doc = util::JsonValue::object();
  doc.set("schema", util::JsonValue("ckd.bench.v1"));
  doc.set("bench", util::JsonValue(name_));
  doc.set("host", hostJson());
  doc.set("metrics", metrics_);
  util::JsonValue profiles = util::JsonValue::array();
  for (const ProfileReport& report : profiles_) profiles.push(toJson(report));
  doc.set("profiles", std::move(profiles));

  std::FILE* f = std::fopen(jsonPath_.c_str(), "w");
  CKD_REQUIRE(f != nullptr, "cannot open --json output file");
  const std::string text = doc.dump(2);
  std::fwrite(text.data(), 1, text.size(), f);
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote %s\n", jsonPath_.c_str());
}

void BenchRunner::writeTraceDump() const {
  // Streamed, not built as a JsonValue tree: a full ring is ~1M events.
  std::FILE* f = std::fopen(tracePath_.c_str(), "w");
  CKD_REQUIRE(f != nullptr, "cannot open --trace-dump output file");
  std::fprintf(f, "{\"schema\":\"ckd.trace.v1\",\"bench\":\"%s\",\"runs\":[",
               util::jsonEscape(name_).c_str());
  for (std::size_t i = 0; i < profiles_.size(); ++i) {
    std::fprintf(f, "%s{\"label\":\"%s\",\"horizon_us\":%s}", i ? "," : "",
                 util::jsonEscape(profiles_[i].label).c_str(),
                 util::jsonNumber(profiles_[i].horizon_us).c_str());
  }
  std::fputs("],\"events\":[", f);
  bool first = true;
  for (const ProfileReport& report : profiles_) {
    const std::string run = util::jsonEscape(report.label);
    for (const sim::TraceEvent& ev : report.traceEvents) {
      if (traceFilter_.active() && !traceFilter_.matches(ev)) continue;
      std::fprintf(f, "%s\n{\"run\":\"%s\",\"t\":%s,\"pe\":%d,\"tag\":\"%s\"",
                   first ? "" : ",", run.c_str(),
                   util::jsonNumber(ev.time).c_str(), ev.pe,
                   std::string(sim::traceTagName(ev.tag)).c_str());
      if (ev.value != 0.0)
        std::fprintf(f, ",\"v\":%s", util::jsonNumber(ev.value).c_str());
      // Causal span fields ride along only when set, so dumps from
      // non-causal tags stay byte-compatible with pre-causal readers.
      if (ev.id != 0) {
        std::fprintf(f, ",\"id\":%llu",
                     static_cast<unsigned long long>(ev.id));
        if (ev.parent != 0)
          std::fprintf(f, ",\"parent\":%llu",
                       static_cast<unsigned long long>(ev.parent));
        if (ev.phase != sim::SpanPhase::kInstant)
          std::fprintf(f, ",\"ph\":\"%s\"",
                       ev.phase == sim::SpanPhase::kBegin ? "b" : "e");
        if (ev.aux >= 0) std::fprintf(f, ",\"aux\":%d", ev.aux);
      }
      std::fputc('}', f);
      first = false;
    }
  }
  std::fprintf(f, "\n]}\n");
  std::fclose(f);
  std::fprintf(stderr, "[bench] wrote %s\n", tracePath_.c_str());
}

}  // namespace ckd::harness
