#pragma once
// A verbs-like InfiniBand layer over the simulated fabric.
//
// Modeled subset (what Charm++'s IB machine layer and CkDirect need):
//  * memory registration — RDMA operations validate that both the local and
//    remote ranges fall inside registered regions, like a real HCA checking
//    lkey/rkey;
//  * Reliable Connection queue pairs — per-QP in-order, exactly-once
//    delivery ("if the last byte has been received ... the rest of the
//    message has also been received", §2.1);
//  * RDMA WRITE — one-sided; the payload is *really* copied into the target
//    buffer at the modeled delivery time, and no receive-side completion is
//    generated (matching hardware: the receiver must discover the data by
//    inspecting memory — which is exactly CkDirect's sentinel poll). The
//    simulator-only `on_remote_delivered` hook exists so the runtime can
//    model "the poll loop would notice shortly after this instant".
//  * SEND/RECV — two-sided with posted receive buffers (used by the default
//    Charm++ transport's eager path).
//
// For the ordering ablation (DESIGN.md §5.4) the layer can be switched into
// an intentionally unfaithful mode that splits RDMA writes into chunks
// delivered tail-first, demonstrating why the sentinel technique requires
// RC in-order semantics.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <vector>

#include "net/fabric.hpp"

namespace ckd::ib {

/// Identifies a registered memory region (pe + key, like an rkey).
struct RegionId {
  int pe = -1;
  std::uint32_t key = 0;

  bool valid() const { return pe >= 0 && key != 0; }
  friend bool operator==(const RegionId&, const RegionId&) = default;
};

using QpId = int;
constexpr QpId kInvalidQp = -1;

class IbVerbs {
 public:
  explicit IbVerbs(net::Fabric& fabric);

  net::Fabric& fabric() { return fabric_; }
  sim::Engine& engine() { return fabric_.engine(); }

  // --- memory registration -------------------------------------------------

  /// Pin [addr, addr+length) for PE `pe`. Returns the region id the remote
  /// side must present for RDMA access.
  RegionId registerMemory(int pe, void* addr, std::size_t length);
  void deregisterMemory(RegionId id);
  bool regionValid(RegionId id) const;
  /// True when [addr, addr+length) lies wholly inside the region.
  bool regionCovers(RegionId id, const void* addr, std::size_t length) const;
  std::size_t regionCount(int pe) const;

  // --- queue pairs ----------------------------------------------------------

  /// Create (or fetch the cached) RC queue pair from `localPe` to
  /// `remotePe`. Connections are directional in this model; a pingpong
  /// needs one QP each way.
  QpId connect(int localPe, int remotePe);
  int qpSource(QpId qp) const;
  int qpDestination(QpId qp) const;

  // --- one-sided ------------------------------------------------------------

  struct RdmaWrite {
    QpId qp = kInvalidQp;
    const void* local_addr = nullptr;
    RegionId local_region;
    void* remote_addr = nullptr;
    RegionId remote_region;
    std::size_t bytes = 0;
    /// Send-side completion (local buffer reusable).
    std::function<void()> on_local_complete;
    /// SIMULATOR-ONLY: fires when the payload lands in remote memory. Real
    /// hardware gives no such signal for a plain RDMA WRITE; the runtime
    /// uses it solely to schedule its next poll-scan event.
    std::function<void()> on_remote_delivered;
  };
  void postRdmaWrite(RdmaWrite write);

  // --- two-sided ------------------------------------------------------------

  void postSend(QpId qp, const void* data, std::size_t bytes,
                std::function<void()> on_local_complete = {});
  /// Post a receive buffer; `on_receive(bytes)` fires once a matching send
  /// lands. Receives on a QP are consumed in post order.
  void postRecv(QpId qp, void* buffer, std::size_t capacity,
                std::function<void(std::size_t)> on_receive);

  std::size_t postedRecvCount(QpId qp) const;

  // --- test hooks -----------------------------------------------------------

  /// >1 splits each RDMA write into `chunks` pieces injected tail-first,
  /// breaking the in-order guarantee on purpose (ablation §5.4).
  void setUnorderedChunksForTest(int chunks) { unorderedChunks_ = chunks; }

  std::uint64_t rdmaWritesPosted() const { return rdmaWrites_; }
  std::uint64_t sendsPosted() const { return sends_; }

 private:
  struct Region {
    int pe;
    std::byte* base;
    std::size_t length;
    bool valid;
  };
  struct PostedRecv {
    std::byte* buffer;
    std::size_t capacity;
    std::function<void(std::size_t)> on_receive;
  };
  struct PendingArrival {
    std::vector<std::byte> data;
  };
  struct Qp {
    int src;
    int dst;
    std::deque<PostedRecv> recvQueue;
    std::deque<PendingArrival> unexpected;
  };

  const Region* findRegion(RegionId id) const;
  void deliverSend(Qp& qp, std::vector<std::byte> data);

  net::Fabric& fabric_;
  std::vector<Region> regions_;
  std::vector<Qp> qps_;
  std::map<std::pair<int, int>, QpId> qpCache_;
  int unorderedChunks_ = 1;
  std::uint64_t rdmaWrites_ = 0;
  std::uint64_t sends_ = 0;
};

}  // namespace ckd::ib
