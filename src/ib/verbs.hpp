#pragma once
// A verbs-like InfiniBand layer over the simulated fabric.
//
// Modeled subset (what Charm++'s IB machine layer and CkDirect need):
//  * memory registration — RDMA operations validate that both the local and
//    remote ranges fall inside registered regions, like a real HCA checking
//    lkey/rkey; deregistered slots are recycled with a bumped generation so
//    stale region ids can never alias a later registration;
//  * Reliable Connection queue pairs — per-QP in-order, exactly-once
//    delivery ("if the last byte has been received ... the rest of the
//    message has also been received", §2.1);
//  * RDMA WRITE — one-sided; the payload is *really* copied into the target
//    buffer at the modeled delivery time, and no receive-side completion is
//    generated (matching hardware: the receiver must discover the data by
//    inspecting memory — which is exactly CkDirect's sentinel poll). The
//    simulator-only `on_remote_delivered` hook exists so the runtime can
//    model "the poll loop would notice shortly after this instant".
//  * SEND/RECV — two-sided with posted receive buffers (used by the default
//    Charm++ transport's eager path).
//
// When the fabric has a fault injector installed, the RC guarantee is no
// longer free: every RDMA write and send is carried by a
// fault::ReliableLink (sequence numbers, checksums, ack/retransmit with
// exponential backoff, IB-style retry budget), local completions fire at
// ack time, and a permanently failed QP surfaces WC_RETRY_EXC-style error
// completions through RdmaWrite::on_error. resetQp() re-establishes a
// failed connection (fresh PSN) so the layers above can retry.
//
// For the ordering ablation (DESIGN.md §5.4) the layer can be switched into
// an intentionally unfaithful mode that splits RDMA writes into chunks
// delivered tail-first, demonstrating why the sentinel technique requires
// RC in-order semantics.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "fault/reliable.hpp"
#include "net/fabric.hpp"

namespace ckd::ib {

/// Identifies a registered memory region (pe + key, like an rkey). The key
/// encodes a slot index and a reuse generation; a stale id (deregistered,
/// slot since recycled) never validates.
struct RegionId {
  int pe = -1;
  std::uint32_t key = 0;

  bool valid() const { return pe >= 0 && key != 0; }
  friend bool operator==(const RegionId&, const RegionId&) = default;
};

using QpId = int;
constexpr QpId kInvalidQp = -1;

class IbVerbs {
 public:
  explicit IbVerbs(net::Fabric& fabric);

  net::Fabric& fabric() { return fabric_; }
  sim::Engine& engine() { return fabric_.engine(); }

  // --- memory registration -------------------------------------------------

  /// Pin [addr, addr+length) for PE `pe`. Returns the region id the remote
  /// side must present for RDMA access.
  RegionId registerMemory(int pe, void* addr, std::size_t length);
  /// Release a region. The slot becomes reusable by a later registerMemory;
  /// the released id (and any stale copy of it) stops validating. Aborts on
  /// double-free or an unknown id.
  void deregisterMemory(RegionId id);
  bool regionValid(RegionId id) const;
  /// True when [addr, addr+length) lies wholly inside the region.
  bool regionCovers(RegionId id, const void* addr, std::size_t length) const;
  std::size_t regionCount(int pe) const;

  // --- queue pairs ----------------------------------------------------------

  /// Create (or fetch the cached) RC queue pair from `localPe` to
  /// `remotePe`. Connections are directional in this model; a pingpong
  /// needs one QP each way.
  QpId connect(int localPe, int remotePe);
  int qpSource(QpId qp) const;
  int qpDestination(QpId qp) const;

  /// True while the QP sits in the error state (retry budget exhausted,
  /// injected QP failure, or remote-access NAK). Only possible with faults.
  bool qpInError(QpId qp) const;
  /// Tear down and re-establish a failed QP with a fresh PSN. No-op on a
  /// healthy QP. Work posted while in error completes with WcStatus::kQpError.
  void resetQp(QpId qp);

  // --- fail-stop support ----------------------------------------------------

  /// Forcibly flush every reliable flow touching `pe` (the PE died). Pending
  /// work is dropped silently — the restart protocol re-drives it — and
  /// pre-crash copies still on the wire are NAKed as stale on arrival.
  void flushPe(int pe) {
    if (link_) link_->flushPe(pe);
  }
  /// Flush every flow (global rollback to the last checkpoint).
  void flushAll() {
    if (link_) link_->flushAll();
  }
  /// Deregister every region owned by `pe`: a crashed node's pinned pages
  /// are gone, so every outstanding rkey for them must stop validating.
  /// Restored elements re-register through the layers above.
  void invalidatePe(int pe);
  std::uint64_t staleNaks() const { return link_ ? link_->staleNaks() : 0; }

  // --- one-sided ------------------------------------------------------------

  struct RdmaWrite {
    QpId qp = kInvalidQp;
    const void* local_addr = nullptr;
    RegionId local_region;
    void* remote_addr = nullptr;
    RegionId remote_region;
    std::size_t bytes = 0;
    /// Send-side completion (local buffer reusable). Under fault injection
    /// this is the ack-confirmed completion, like a real RC send CQE.
    std::function<void()> on_local_complete;
    /// SIMULATOR-ONLY: fires when the payload lands in remote memory. Real
    /// hardware gives no such signal for a plain RDMA WRITE; the runtime
    /// uses it solely to schedule its next poll-scan event.
    std::function<void()> on_remote_delivered;
    /// Error completion (WC_RETRY_EXC / remote-access / QP flush). Only
    /// fires when the fabric has faults armed; a write without a handler
    /// aborts the simulation on permanent failure.
    std::function<void(fault::WcStatus)> on_error;
    /// Causal chain id carried in the work request (a POD, like an IB wr_id)
    /// so the fabric stamps the wire trace points with it; 0 = untraced.
    std::uint64_t trace_id = 0;
  };
  void postRdmaWrite(RdmaWrite write);

  // --- two-sided ------------------------------------------------------------

  void postSend(QpId qp, const void* data, std::size_t bytes,
                std::function<void()> on_local_complete = {},
                std::uint64_t trace_id = 0);
  /// Post a receive buffer; `on_receive(bytes)` fires once a matching send
  /// lands. Receives on a QP are consumed in post order.
  void postRecv(QpId qp, void* buffer, std::size_t capacity,
                std::function<void(std::size_t)> on_receive);

  std::size_t postedRecvCount(QpId qp) const;

  // --- test hooks -----------------------------------------------------------

  /// >1 splits each RDMA write into `chunks` pieces injected tail-first,
  /// breaking the in-order guarantee on purpose (ablation §5.4).
  void setUnorderedChunksForTest(int chunks) { unorderedChunks_ = chunks; }

  std::uint64_t rdmaWritesPosted() const {
    return rdmaWrites_.load(std::memory_order_relaxed);
  }
  std::uint64_t sendsPosted() const {
    return sends_.load(std::memory_order_relaxed);
  }

 private:
  struct Region {
    int pe;
    std::byte* base;
    std::size_t length;
    bool valid;
    std::uint32_t generation;  ///< bumped on deregister; encoded in the key
  };
  struct PostedRecv {
    std::byte* buffer;
    std::size_t capacity;
    std::function<void(std::size_t)> on_receive;
  };
  struct PendingArrival {
    std::vector<std::byte> data;
  };
  struct Qp {
    int src;
    int dst;
    std::deque<PostedRecv> recvQueue;
    std::deque<PendingArrival> unexpected;
  };

  const Region* findRegion(RegionId id) const;
  /// Body of findRegion for callers already holding mu_.
  const Region* findRegionLocked(RegionId id) const;
  /// Bounds-checked element lookup under mu_. The returned reference stays
  /// valid after the lock drops: the tables are deques, which never move
  /// elements on append.
  Qp& qpAt(QpId id);
  const Qp& qpAt(QpId id) const;
  void deliverSend(Qp& qp, std::vector<std::byte> data);
  /// Faults armed on the fabric: RC semantics must be earned by the link.
  bool reliableActive() { return fabric_.faults() != nullptr; }
  fault::ReliableLink& link();

  net::Fabric& fabric_;
  /// Guards the table *structure* below (region slots, QP directory, the
  /// connect cache): under --shards, registerMemory/connect run on the
  /// issuing PE's shard thread, concurrently with lookups from other
  /// shards. Element state (a QP's receive queues, a valid region's
  /// base/length) is still single-owner: only the receiver context touches
  /// it, and cross-shard handoff of an id crosses a window barrier.
  mutable std::mutex mu_;
  std::deque<Region> regions_;
  std::vector<std::size_t> freeSlots_;  ///< recycled region slots
  std::deque<Qp> qps_;
  std::map<std::pair<int, int>, QpId> qpCache_;
  std::unique_ptr<fault::ReliableLink> link_;  ///< lazy; only with faults
  int unorderedChunks_ = 1;
  /// Posts run on the issuing PE's shard thread; host-stat counters are the
  /// only state they share across shards.
  std::atomic<std::uint64_t> rdmaWrites_{0};
  std::atomic<std::uint64_t> sends_{0};
};

}  // namespace ckd::ib
