#include "ib/verbs.hpp"

#include <algorithm>
#include <cstring>
#include <utility>

#include "util/pool.hpp"
#include "util/require.hpp"

namespace ckd::ib {

namespace {
/// Region keys pack (generation, slot): the low kSlotBits hold the 1-based
/// slot index, the bits above hold the reuse generation. Generation 0 keys
/// are numerically identical to a never-recycling scheme, so fault-free
/// runs see the exact same ids as before slots became reusable.
constexpr std::uint32_t kSlotBits = 20;
constexpr std::uint32_t kSlotMask = (1u << kSlotBits) - 1;
constexpr std::uint32_t kGenMask = (~0u) >> kSlotBits;

std::uint32_t packKey(std::size_t slot, std::uint32_t generation) {
  return static_cast<std::uint32_t>((generation & kGenMask) << kSlotBits) |
         (static_cast<std::uint32_t>(slot) + 1);
}
}  // namespace

IbVerbs::IbVerbs(net::Fabric& fabric) : fabric_(fabric) {
  // With faults armed, build the reliable link now: lazy construction from
  // a first post could race across shard threads, and the link's own lock
  // cannot guard its own birth.
  if (reliableActive()) link();
}

fault::ReliableLink& IbVerbs::link() {
  if (!link_)
    link_ = std::make_unique<fault::ReliableLink>(
        fabric_, fabric_.faults()->plan().rel);
  return *link_;
}

RegionId IbVerbs::registerMemory(int pe, void* addr, std::size_t length) {
  CKD_REQUIRE(pe >= 0 && pe < fabric_.numPes(), "PE out of range");
  CKD_REQUIRE(addr != nullptr, "cannot register a null buffer");
  CKD_REQUIRE(length > 0, "cannot register an empty region");
  const std::lock_guard<std::mutex> lock(mu_);
  if (!freeSlots_.empty()) {
    const std::size_t slot = freeSlots_.back();
    freeSlots_.pop_back();
    Region& region = regions_[slot];
    region.pe = pe;
    region.base = static_cast<std::byte*>(addr);
    region.length = length;
    region.valid = true;
    return RegionId{pe, packKey(slot, region.generation)};
  }
  const std::size_t slot = regions_.size();
  CKD_REQUIRE(slot < kSlotMask, "region table full");
  regions_.push_back(Region{pe, static_cast<std::byte*>(addr), length,
                            /*valid=*/true, /*generation=*/0});
  return RegionId{pe, packKey(slot, 0)};
}

const IbVerbs::Region* IbVerbs::findRegion(RegionId id) const {
  const std::lock_guard<std::mutex> lock(mu_);
  return findRegionLocked(id);
}

const IbVerbs::Region* IbVerbs::findRegionLocked(RegionId id) const {
  if (!id.valid()) return nullptr;
  const std::size_t slot = (id.key & kSlotMask) - 1;
  if (slot >= regions_.size()) return nullptr;
  const Region& region = regions_[slot];
  if (!region.valid || region.pe != id.pe) return nullptr;
  if ((region.generation & kGenMask) != (id.key >> kSlotBits)) return nullptr;
  return &region;
}

void IbVerbs::deregisterMemory(RegionId id) {
  const std::lock_guard<std::mutex> lock(mu_);
  CKD_REQUIRE(findRegionLocked(id) != nullptr,
              "deregistering an unknown, stale, or already-freed region");
  const std::size_t slot = (id.key & kSlotMask) - 1;
  Region& region = regions_[slot];
  region.valid = false;
  // Bump the generation so every outstanding copy of this id goes stale,
  // then make the slot reusable.
  ++region.generation;
  freeSlots_.push_back(slot);
}

bool IbVerbs::regionValid(RegionId id) const { return findRegion(id) != nullptr; }

bool IbVerbs::regionCovers(RegionId id, const void* addr,
                           std::size_t length) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const Region* region = findRegionLocked(id);
  if (region == nullptr) return false;
  const auto* begin = static_cast<const std::byte*>(addr);
  return begin >= region->base &&
         begin + length <= region->base + region->length;
}

std::size_t IbVerbs::regionCount(int pe) const {
  const std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const Region& region : regions_)
    if (region.valid && region.pe == pe) ++n;
  return n;
}

QpId IbVerbs::connect(int localPe, int remotePe) {
  CKD_REQUIRE(localPe >= 0 && localPe < fabric_.numPes(), "PE out of range");
  CKD_REQUIRE(remotePe >= 0 && remotePe < fabric_.numPes(), "PE out of range");
  const std::lock_guard<std::mutex> lock(mu_);
  const auto key = std::make_pair(localPe, remotePe);
  const auto it = qpCache_.find(key);
  if (it != qpCache_.end()) return it->second;
  const QpId id = static_cast<QpId>(qps_.size());
  qps_.push_back(Qp{localPe, remotePe, {}, {}});
  qpCache_.emplace(key, id);
  return id;
}

IbVerbs::Qp& IbVerbs::qpAt(QpId id) {
  const std::lock_guard<std::mutex> lock(mu_);
  CKD_REQUIRE(id >= 0 && id < static_cast<QpId>(qps_.size()), "bad QP");
  return qps_[static_cast<std::size_t>(id)];
}

const IbVerbs::Qp& IbVerbs::qpAt(QpId id) const {
  return const_cast<IbVerbs*>(this)->qpAt(id);
}

int IbVerbs::qpSource(QpId qp) const { return qpAt(qp).src; }

int IbVerbs::qpDestination(QpId qp) const { return qpAt(qp).dst; }

bool IbVerbs::qpInError(QpId qp) const {
  qpAt(qp);  // bounds check
  return link_ != nullptr && link_->channelInError(qp);
}

void IbVerbs::resetQp(QpId qp) {
  qpAt(qp);  // bounds check
  if (link_) link_->resetChannel(qp);
}

void IbVerbs::invalidatePe(int pe) {
  CKD_REQUIRE(pe >= 0 && pe < fabric_.numPes(), "PE out of range");
  const std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t slot = 0; slot < regions_.size(); ++slot) {
    Region& region = regions_[slot];
    if (!region.valid || region.pe != pe) continue;
    region.valid = false;
    ++region.generation;
    freeSlots_.push_back(slot);
  }
}

void IbVerbs::postRdmaWrite(RdmaWrite write) {
  const Qp& qp = qpAt(write.qp);
  CKD_REQUIRE(write.bytes > 0, "zero-length RDMA write");
  CKD_REQUIRE(regionCovers(write.local_region, write.local_addr, write.bytes),
              "local range not covered by the registered region (bad lkey)");
  CKD_REQUIRE(write.remote_region.pe == qp.dst,
              "remote region does not belong to the QP's destination PE");
  CKD_REQUIRE(
      regionCovers(write.remote_region, write.remote_addr, write.bytes),
      "remote range not covered by the registered region (bad rkey)");
  rdmaWrites_.fetch_add(1, std::memory_order_relaxed);

  const auto* src = static_cast<const std::byte*>(write.local_addr);
  auto* dst = static_cast<std::byte*>(write.remote_addr);

  const int chunks = std::max(1, unorderedChunks_);
  if (chunks == 1 && reliableActive()) {
    // Faults armed: the wire may drop/corrupt/duplicate, so RC placement
    // guarantees are carried by the go-back-N link. The payload image rides
    // each transmission; the local completion fires at ack time, like a
    // real RC send CQE. Permanent failure surfaces through on_error.
    fault::ReliableLink::Send send;
    send.src = qp.src;
    send.dst = qp.dst;
    send.wireBytes = write.bytes;
    send.cls = fault::MsgClass::kBulk;
    send.payload.assign(src, src + write.bytes);
    send.on_deliver = [dst, onRemote = std::move(write.on_remote_delivered)](
                          std::vector<std::byte>&& image) mutable {
      std::memcpy(dst, image.data(), image.size());
      if (onRemote) onRemote();
    };
    send.on_acked = std::move(write.on_local_complete);
    send.on_error = std::move(write.on_error);
    send.traceId = write.trace_id;
    link().post(write.qp, std::move(send));
    return;
  }
  if (chunks == 1) {
    // Faithful RC path: all-or-nothing placement at the delivery instant.
    // Copy the payload now so the sender may reuse its buffer after the
    // local completion (which fires no later than delivery). A pooled block
    // rather than a fresh vector: under port contention the delivery can
    // fire later than the local completion, so capturing the source pointer
    // instead of copying would read a recycled buffer.
    util::PooledBuffer payload(write.bytes);
    std::memcpy(payload.data(), src, write.bytes);
    auto onLocal = std::move(write.on_local_complete);
    auto onRemote = std::move(write.on_remote_delivered);
    const sim::Time delivered = fabric_.submit(
        qp.src, qp.dst, write.bytes, net::XferKind::kRdma,
        [dst, payload = std::move(payload), onRemote = std::move(onRemote)]() mutable {
          std::memcpy(dst, payload.data(), payload.size());
          if (onRemote) onRemote();
        },
        write.trace_id);
    if (onLocal) fabric_.engine().at(delivered, std::move(onLocal));
    return;
  }

  // Ablation mode: deliberately violate in-order delivery by injecting the
  // *tail* chunk first. The sentinel (last 8 bytes) then lands before the
  // head of the message — exactly the failure RC ordering prevents. (This
  // mode stays on the raw fabric even with faults armed; it exists to model
  // an unreliable transport in the first place.)
  const std::size_t chunkSize =
      (write.bytes + static_cast<std::size_t>(chunks) - 1) /
      static_cast<std::size_t>(chunks);
  sim::Time lastDelivery = 0.0;
  for (int c = chunks - 1; c >= 0; --c) {
    const std::size_t offset = static_cast<std::size_t>(c) * chunkSize;
    if (offset >= write.bytes) continue;
    const std::size_t len = std::min(chunkSize, write.bytes - offset);
    std::vector<std::byte> payload(src + offset, src + offset + len);
    const bool isTail = (offset + len == write.bytes);
    auto onRemote = isTail ? write.on_remote_delivered : std::function<void()>{};
    lastDelivery = fabric_.submit(
        qp.src, qp.dst, len, net::XferKind::kRdma,
        [out = dst + offset, payload = std::move(payload),
         onRemote = std::move(onRemote)]() mutable {
          std::memcpy(out, payload.data(), payload.size());
          if (onRemote) onRemote();
        },
        write.trace_id);
  }
  if (write.on_local_complete)
    fabric_.engine().at(lastDelivery, std::move(write.on_local_complete));
}

void IbVerbs::postSend(QpId qpId, const void* data, std::size_t bytes,
                       std::function<void()> on_local_complete,
                       std::uint64_t trace_id) {
  CKD_REQUIRE(data != nullptr || bytes == 0, "null send payload");
  sends_.fetch_add(1, std::memory_order_relaxed);
  Qp& qp = qpAt(qpId);
  const auto* src = static_cast<const std::byte*>(data);
  std::vector<std::byte> payload(src, src + bytes);
  if (reliableActive()) {
    fault::ReliableLink::Send send;
    send.src = qp.src;
    send.dst = qp.dst;
    send.wireBytes = bytes;
    send.cls = fault::MsgClass::kPacket;
    send.payload = std::move(payload);
    send.on_deliver = [this, qpId](std::vector<std::byte>&& image) {
      deliverSend(qpAt(qpId), std::move(image));
    };
    send.on_acked = std::move(on_local_complete);
    send.traceId = trace_id;
    link().post(qpId, std::move(send));
    return;
  }
  const sim::Time delivered = fabric_.submit(
      qp.src, qp.dst, bytes, net::XferKind::kPacket,
      [this, qpId, payload = std::move(payload)]() mutable {
        deliverSend(qpAt(qpId), std::move(payload));
      },
      trace_id);
  if (on_local_complete)
    fabric_.engine().at(delivered, std::move(on_local_complete));
}

void IbVerbs::deliverSend(Qp& qp, std::vector<std::byte> data) {
  if (qp.recvQueue.empty()) {
    // No receive posted: a real RC QP would RNR-NAK and retry; the model
    // parks the payload until the next postRecv.
    qp.unexpected.push_back(PendingArrival{std::move(data)});
    return;
  }
  PostedRecv recv = std::move(qp.recvQueue.front());
  qp.recvQueue.pop_front();
  CKD_REQUIRE(data.size() <= recv.capacity,
              "arrived message larger than the posted receive buffer");
  std::memcpy(recv.buffer, data.data(), data.size());
  if (recv.on_receive) recv.on_receive(data.size());
}

void IbVerbs::postRecv(QpId qpId, void* buffer, std::size_t capacity,
                       std::function<void(std::size_t)> on_receive) {
  CKD_REQUIRE(buffer != nullptr, "null receive buffer");
  Qp& qp = qpAt(qpId);
  if (!qp.unexpected.empty()) {
    PendingArrival arrival = std::move(qp.unexpected.front());
    qp.unexpected.pop_front();
    CKD_REQUIRE(arrival.data.size() <= capacity,
                "arrived message larger than the posted receive buffer");
    std::memcpy(buffer, arrival.data.data(), arrival.data.size());
    if (on_receive) on_receive(arrival.data.size());
    return;
  }
  qp.recvQueue.push_back(
      PostedRecv{static_cast<std::byte*>(buffer), capacity, std::move(on_receive)});
}

std::size_t IbVerbs::postedRecvCount(QpId qpId) const {
  return qpAt(qpId).recvQueue.size();
}

}  // namespace ckd::ib
