#include "fault/fault.hpp"

#include <cstring>
#include <sstream>
#include <utility>

#include "util/require.hpp"

namespace ckd::fault {

std::string_view msgClassName(MsgClass cls) {
  switch (cls) {
    case MsgClass::kBulk: return "bulk";
    case MsgClass::kPacket: return "packet";
    case MsgClass::kControl: return "control";
    case MsgClass::kAny: return "any";
  }
  return "?";
}

std::string_view faultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kCorrupt: return "corrupt";
    case FaultKind::kQpError: return "qp_error";
    case FaultKind::kRegionInvalidate: return "region_invalid";
    case FaultKind::kPeCrash: return "pe_crash";
    case FaultKind::kCount: break;
  }
  return "?";
}

bool FaultPlan::armed() const {
  for (const FaultRule& rule : rules)
    if (rule.probability > 0.0 || rule.nth > 0 ||
        (rule.kind == FaultKind::kPeCrash && rule.crash_at_us >= 0.0))
      return true;
  return false;
}

bool FaultPlan::hasCrashes() const {
  for (const FaultRule& rule : rules)
    if (rule.kind == FaultKind::kPeCrash && rule.crash_at_us >= 0.0)
      return true;
  return false;
}

std::string FaultPlan::summary() const {
  std::ostringstream out;
  bool first = true;
  for (const FaultRule& rule : rules) {
    if (rule.kind == FaultKind::kPeCrash) {
      if (rule.crash_at_us < 0.0) continue;
      if (!first) out << ", ";
      first = false;
      out << "pe_crash@" << rule.crash_at_us;
      if (rule.src >= 0) out << " pe=" << rule.src;
      continue;
    }
    if (rule.probability <= 0.0 && rule.nth == 0) continue;
    if (!first) out << ", ";
    first = false;
    out << faultKindName(rule.kind);
    if (rule.nth > 0)
      out << " every " << rule.nth;
    else
      out << " p=" << rule.probability;
    if (rule.src >= 0) out << " src=" << rule.src;
    if (rule.dst >= 0) out << " dst=" << rule.dst;
    if (rule.cls != MsgClass::kAny) out << " class=" << msgClassName(rule.cls);
  }
  if (first) return "no faults";
  return out.str();
}

namespace {

std::vector<std::string> splitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string cur;
  for (const char c : text) {
    if (c == sep) {
      parts.push_back(cur);
      cur.clear();
    } else if (c != ' ') {
      cur += c;
    }
  }
  parts.push_back(cur);
  return parts;
}

double parseNumber(const std::string& text, const char* what) {
  std::size_t used = 0;
  double value = 0.0;
  bool ok = !text.empty();
  if (ok) {
    try {
      value = std::stod(text, &used);
    } catch (...) {
      ok = false;
    }
  }
  CKD_REQUIRE(ok && used == text.size(), what);
  return value;
}

FaultKind parseKind(const std::string& name) {
  if (name == "drop") return FaultKind::kDrop;
  if (name == "delay") return FaultKind::kDelay;
  if (name == "duplicate" || name == "dup") return FaultKind::kDuplicate;
  if (name == "corrupt") return FaultKind::kCorrupt;
  if (name == "qp_error" || name == "qperror") return FaultKind::kQpError;
  if (name == "region_invalid" || name == "region_invalidate")
    return FaultKind::kRegionInvalidate;
  CKD_REQUIRE(false, "unknown fault kind in --faults spec");
  return FaultKind::kDrop;  // unreachable
}

MsgClass parseClass(const std::string& name) {
  if (name == "bulk" || name == "rdma") return MsgClass::kBulk;
  if (name == "packet") return MsgClass::kPacket;
  if (name == "control") return MsgClass::kControl;
  if (name == "any") return MsgClass::kAny;
  CKD_REQUIRE(false, "unknown message class in --faults spec");
  return MsgClass::kAny;  // unreachable
}

void applyRelOption(ReliabilityParams& rel, const std::string& key,
                    const std::string& value) {
  if (key == "timeout") {
    rel.timeout_us = parseNumber(value, "bad rel timeout in --faults spec");
    CKD_REQUIRE(rel.timeout_us > 0.0, "rel timeout must be positive");
  } else if (key == "backoff") {
    rel.backoff = parseNumber(value, "bad rel backoff in --faults spec");
    CKD_REQUIRE(rel.backoff >= 1.0, "rel backoff must be >= 1");
  } else if (key == "budget") {
    rel.retry_budget =
        static_cast<int>(parseNumber(value, "bad rel budget in --faults spec"));
    CKD_REQUIRE(rel.retry_budget >= 0, "rel budget must be >= 0");
  } else if (key == "appbudget") {
    rel.app_retry_budget = static_cast<int>(
        parseNumber(value, "bad rel appbudget in --faults spec"));
    CKD_REQUIRE(rel.app_retry_budget >= 0, "rel appbudget must be >= 0");
  } else {
    CKD_REQUIRE(false, "unknown rel option in --faults spec");
  }
}

void applyRuleOption(FaultRule& rule, const std::string& key,
                     const std::string& value) {
  if (key == "src") {
    rule.src = static_cast<int>(parseNumber(value, "bad src in --faults spec"));
  } else if (key == "dst") {
    rule.dst = static_cast<int>(parseNumber(value, "bad dst in --faults spec"));
  } else if (key == "class" || key == "kind") {
    rule.cls = parseClass(value);
  } else if (key == "nth") {
    const double n = parseNumber(value, "bad nth in --faults spec");
    CKD_REQUIRE(n >= 1.0, "nth must be >= 1 in --faults spec");
    rule.nth = static_cast<std::uint64_t>(n);
  } else if (key == "jitter") {
    rule.delay_us = parseNumber(value, "bad jitter in --faults spec");
    CKD_REQUIRE(rule.delay_us >= 0.0, "jitter must be >= 0");
  } else if (key == "pe") {
    CKD_REQUIRE(rule.kind == FaultKind::kPeCrash,
                "pe= is only valid on pe_crash rules");
    rule.src = static_cast<int>(parseNumber(value, "bad pe in --faults spec"));
    CKD_REQUIRE(rule.src >= 0, "pe must be >= 0 in --faults spec");
  } else {
    CKD_REQUIRE(false, "unknown rule option in --faults spec");
  }
}

}  // namespace

FaultPlan parseFaultSpec(const std::string& spec) {
  FaultPlan plan;
  if (spec.empty()) return plan;
  for (const std::string& ruleText : splitOn(spec, ',')) {
    CKD_REQUIRE(!ruleText.empty(), "empty rule in --faults spec");
    const std::vector<std::string> parts = splitOn(ruleText, ';');
    const std::string& head = parts.front();
    // Fail-stop rules use "@" with an absolute virtual time instead of a
    // probability: "pe_crash@1500" or "pe_crash@1500;pe=3".
    if (head.rfind("pe_crash@", 0) == 0) {
      FaultRule rule;
      rule.kind = FaultKind::kPeCrash;
      rule.crash_at_us = parseNumber(head.substr(std::strlen("pe_crash@")),
                                     "bad pe_crash time in --faults spec");
      CKD_REQUIRE(rule.crash_at_us >= 0.0, "pe_crash time must be >= 0");
      for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::size_t eq = parts[i].find('=');
        CKD_REQUIRE(eq != std::string::npos, "rule option must be key=value");
        applyRuleOption(rule, parts[i].substr(0, eq), parts[i].substr(eq + 1));
      }
      plan.rules.push_back(rule);
      continue;
    }
    const std::size_t colon = head.find(':');
    CKD_REQUIRE(colon != std::string::npos,
                "--faults rule must look like kind:probability");
    const std::string name = head.substr(0, colon);
    if (name == "rel") {
      // Pseudo-rule carrying reliability knobs: "rel:0;timeout=20;budget=4".
      for (std::size_t i = 1; i < parts.size(); ++i) {
        const std::size_t eq = parts[i].find('=');
        CKD_REQUIRE(eq != std::string::npos, "rel option must be key=value");
        applyRelOption(plan.rel, parts[i].substr(0, eq),
                       parts[i].substr(eq + 1));
      }
      continue;
    }
    FaultRule rule;
    rule.kind = parseKind(name);
    rule.probability =
        parseNumber(head.substr(colon + 1), "bad probability in --faults spec");
    CKD_REQUIRE(rule.probability >= 0.0 && rule.probability <= 1.0,
                "fault probability must be in [0,1]");
    for (std::size_t i = 1; i < parts.size(); ++i) {
      const std::size_t eq = parts[i].find('=');
      CKD_REQUIRE(eq != std::string::npos, "rule option must be key=value");
      applyRuleOption(rule, parts[i].substr(0, eq), parts[i].substr(eq + 1));
    }
    plan.rules.push_back(rule);
  }
  return plan;
}

std::uint64_t checksum(const std::byte* data, std::size_t len) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < len; ++i) {
    hash ^= static_cast<std::uint64_t>(data[i]);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

FaultInjector::FaultInjector(FaultPlan plan, std::uint64_t seed,
                             sim::TraceRecorder& trace)
    : plan_(std::move(plan)),
      matched_(plan_.rules.size(), 0),
      rng_(seed),
      trace_(trace),
      armed_(plan_.armed()) {}

bool FaultInjector::fires(FaultRule& rule, std::uint64_t& matched, int src,
                          int dst, MsgClass cls) {
  if (rule.src >= 0 && rule.src != src) return false;
  if (rule.dst >= 0 && rule.dst != dst) return false;
  if (rule.cls != MsgClass::kAny && rule.cls != cls) return false;
  if (rule.nth > 0) return (++matched % rule.nth) == 0;
  if (rule.probability <= 0.0) return false;
  // One RNG draw per matching probabilistic rule, in plan order: the fault
  // schedule is a pure function of (seed, plan, deterministic event order).
  return rng_.chance(rule.probability);
}

WireFault FaultInjector::decideWire(sim::Time now, int src, int dst,
                                    std::size_t bytes, MsgClass cls) {
  WireFault out;
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    FaultRule& rule = plan_.rules[i];
    switch (rule.kind) {
      case FaultKind::kDrop:
      case FaultKind::kDelay:
      case FaultKind::kDuplicate:
      case FaultKind::kCorrupt:
        break;
      default:
        continue;  // link-level kinds never fire on the wire
    }
    if (!fires(rule, matched_[i], src, dst, cls)) continue;
    ++counts_[static_cast<std::size_t>(rule.kind)];
    switch (rule.kind) {
      case FaultKind::kDrop:
        out.drop = true;
        trace_.record(now, src, sim::TraceTag::kFaultDrop,
                      static_cast<double>(bytes));
        break;
      case FaultKind::kDelay:
        out.extra_delay_us += rule.delay_us;
        trace_.record(now, src, sim::TraceTag::kFaultDelay, rule.delay_us);
        break;
      case FaultKind::kDuplicate:
        out.duplicate = true;
        trace_.record(now, src, sim::TraceTag::kFaultDuplicate,
                      static_cast<double>(bytes));
        break;
      case FaultKind::kCorrupt:
        out.corrupt = true;
        trace_.record(now, src, sim::TraceTag::kFaultCorrupt,
                      static_cast<double>(bytes));
        break;
      default:
        break;
    }
  }
  return out;
}

LinkFault FaultInjector::decideLink(sim::Time now, int src, int dst,
                                    MsgClass cls) {
  LinkFault out;
  for (std::size_t i = 0; i < plan_.rules.size(); ++i) {
    FaultRule& rule = plan_.rules[i];
    if (rule.kind != FaultKind::kQpError &&
        rule.kind != FaultKind::kRegionInvalidate)
      continue;
    if (!fires(rule, matched_[i], src, dst, cls)) continue;
    ++counts_[static_cast<std::size_t>(rule.kind)];
    if (rule.kind == FaultKind::kQpError) {
      out.qp_error = true;
      trace_.record(now, src, sim::TraceTag::kFaultQpError);
    } else {
      out.region_invalidate = true;
      trace_.record(now, src, sim::TraceTag::kFaultRegionInvalid);
    }
  }
  return out;
}

}  // namespace ckd::fault
