#include "fault/reliable.hpp"

#include <cmath>
#include <utility>

#include "util/require.hpp"

namespace ckd::fault {

namespace {
/// Modeled wire size of a cumulative ack / NAK control message.
constexpr std::size_t kAckBytes = 16;
}  // namespace

std::string_view wcStatusName(WcStatus status) {
  switch (status) {
    case WcStatus::kSuccess: return "success";
    case WcStatus::kRetryExceeded: return "retry_exceeded";
    case WcStatus::kQpError: return "qp_error";
    case WcStatus::kRemoteAccess: return "remote_access";
  }
  return "?";
}

ReliableLink::ReliableLink(WireSender& wire, ReliabilityParams params)
    : wire_(wire), params_(params) {}

void ReliableLink::post(ChannelId channel, Send send) {
  CKD_REQUIRE(send.src >= 0 && send.dst >= 0, "reliable send needs src/dst");
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Flow& f = flow(channel);
  if (f.src < 0) {
    f.src = send.src;
    f.dst = send.dst;
  }
  CKD_REQUIRE(f.src == send.src && f.dst == send.dst,
              "a reliable channel is a point-to-point flow");
  if (f.error) {
    // A post to a QP in the error state completes immediately with a flush
    // error; the caller must resetChannel() first.
    ++errors_;
    trace().record(wire_.wireEngine().now(), send.src,
                   sim::TraceTag::kRelError);
    CKD_REQUIRE(send.on_error != nullptr,
                "post on an errored channel with no error handler");
    send.on_error(WcStatus::kQpError);
    return;
  }

  Entry entry;
  entry.send = std::move(send);
  entry.sum = checksum(entry.send.payload.data(), entry.send.payload.size());

  FaultInjector* injector = wire_.faults();
  if (injector != nullptr && injector->armed()) {
    const LinkFault lf =
        injector->decideLink(wire_.wireEngine().now(), entry.send.src,
                             entry.send.dst, entry.send.cls);
    if (lf.qp_error) {
      // The QP fails at post time: this entry and everything already pending
      // flush with an error completion.
      f.unacked.push_back(std::move(entry));
      f.unacked.back().seq = f.nextSeq++;
      failFlow(channel, WcStatus::kQpError);
      return;
    }
    entry.regionInvalid = lf.region_invalidate;
  }

  entry.seq = f.nextSeq++;
  f.unacked.push_back(std::move(entry));
  transmit(channel, f.unacked.back());
  if (!f.timerArmed) armTimer(channel);
}

void ReliableLink::transmit(ChannelId channel, Entry& entry) {
  ++entry.attempts;
  Flow& f = flow(channel);
  // Each transmission ships its own payload copy: retransmissions race
  // delayed/duplicated earlier copies on the wire, and each copy must be
  // independently checkable at arrival.
  std::vector<std::byte> image = entry.send.payload;
  // Every attempt — first copy and retransmits alike — carries the logical
  // message's chain id: one chain, N wire submissions.
  const sim::Time eta = wire_.sendWire(
      f.src, f.dst, entry.send.wireBytes, entry.send.cls,
      [this, channel, seq = entry.seq, sum = entry.sum,
       regionInvalid = entry.regionInvalid,
       image = std::move(image)](const WireSender::Delivery& d) mutable {
        onWireArrival(channel, seq, sum, regionInvalid, std::move(image),
                      d.corrupted);
      },
      entry.send.traceId);
  if (eta > f.lastEta) f.lastEta = eta;
}

void ReliableLink::onWireArrival(ChannelId channel, std::uint64_t seq,
                                 std::uint64_t sum, bool regionInvalid,
                                 std::vector<std::byte> image, bool corrupted) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Flow& f = flow(channel);
  const sim::Time now = wire_.wireEngine().now();
  if (seq < f.flushBarrier) {
    // A copy transmitted before a fail-stop flush finally arrives. Its entry
    // (and delivery closure, which targets since-re-registered memory) is
    // gone; NAK-and-drop it like a stale-PSN packet hitting a fresh QP. No
    // re-ack either — the new sequence space must not be polluted by ghosts.
    ++staleNaks_;
    trace().record(now, f.dst, sim::TraceTag::kRelStaleNak,
                   static_cast<double>(seq));
    return;
  }
  if (corrupted) {
    // The injector flipped a bit in this copy. Make the damage real, then
    // let the wire-format checksum catch it — a corrupted header (empty
    // payload image) fails its CRC outright. Either way the copy is
    // silently discarded, exactly like a link-level CRC failure; the
    // retransmission timeout recovers.
    if (!image.empty()) {
      image[0] ^= std::byte{0x01};
      if (checksum(image.data(), image.size()) == sum) return;  // unreachable
    }
    return;
  }
  if (regionInvalid) {
    // The remote region was yanked before this write landed: the responder
    // NAKs and the requester QP moves to error (IBV_WC_REM_ACCESS_ERR). The
    // generation check discards NAKs from a connection that has since been
    // torn down and re-established (stale-PSN packets on a real fabric).
    wire_.sendWire(f.dst, f.src, kAckBytes, MsgClass::kControl,
                   [this, channel,
                    gen = f.generation](const WireSender::Delivery& d) {
                     if (d.corrupted) return;
                     std::lock_guard<std::recursive_mutex> lock(mu_);
                     Flow& sender = flow(channel);
                     if (sender.generation == gen && !sender.error)
                       failFlow(channel, WcStatus::kRemoteAccess);
                   });
    return;
  }
  if (seq < f.expected) {
    // Duplicate (wire duplicate, or a retransmission of something already
    // delivered because the ack was lost). Discard, but re-ack so the
    // sender can make progress.
    trace().record(now, f.dst, sim::TraceTag::kRelDupDrop);
    sendAck(channel);
    return;
  }
  if (seq > f.expected) {
    // Gap: an earlier message was dropped. Go-back-N receivers accept only
    // the next expected sequence; the sender's timeout retransmits the
    // window in order.
    trace().record(now, f.dst, sim::TraceTag::kRelOooDrop);
    return;
  }
  ++f.expected;
  // Deliver through the sender-side entry (same address space): it holds
  // the delivery closure. The entry is guaranteed live until the ack we are
  // about to send arrives back — unless the flow failed underneath a copy
  // still in flight, in which case the arrival is from a dead connection.
  for (Entry& e : f.unacked) {
    if (e.seq != seq) continue;
    auto deliver = std::move(e.send.on_deliver);
    if (deliver) deliver(std::move(image));
    break;
  }
  sendAck(channel);
}

void ReliableLink::sendAck(ChannelId channel) {
  Flow& f = flow(channel);
  const std::uint64_t through = f.expected - 1;
  wire_.sendWire(f.dst, f.src, kAckBytes, MsgClass::kControl,
                 [this, channel, through](const WireSender::Delivery& d) {
                   if (d.corrupted) return;  // bad CRC on the ack: discard
                   onAck(channel, through);
                 });
}

void ReliableLink::onAck(ChannelId channel, std::uint64_t through) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Flow& f = flow(channel);
  if (f.error) return;
  bool progressed = false;
  while (!f.unacked.empty() && f.unacked.front().seq <= through) {
    Entry entry = std::move(f.unacked.front());
    f.unacked.pop_front();
    progressed = true;
    trace().record(wire_.wireEngine().now(), f.src, sim::TraceTag::kRelAck,
                   static_cast<double>(entry.attempts));
    trace().observeDeliveryAttempts(static_cast<double>(entry.attempts));
    if (entry.send.on_acked) entry.send.on_acked();
  }
  if (!progressed) return;
  f.timeoutsInARow = 0;
  ++f.timerEpoch;  // invalidate the running timer
  if (f.unacked.empty())
    f.timerArmed = false;
  else
    armTimer(channel);
}

void ReliableLink::armTimer(ChannelId channel) {
  Flow& f = flow(channel);
  f.timerArmed = true;
  const std::uint64_t epoch = ++f.timerEpoch;
  // The base timeout covers the ack round trip for packet-scale messages;
  // for larger writes the timer additionally waits out the contention-free
  // delivery estimate of the newest outstanding copy, so a long transfer
  // is never declared lost while its bytes are still legitimately on the
  // wire (IB local ACK timeout >= path round trip).
  const sim::Time now = wire_.wireEngine().now();
  const sim::Time outstanding = f.lastEta > now ? f.lastEta - now : 0;
  const sim::Time delay = (params_.timeout_us + outstanding) *
                          std::pow(params_.backoff, f.timeoutsInARow);
  wire_.wireEngine().after(
      delay, [this, channel, epoch]() { onTimeout(channel, epoch); });
}

void ReliableLink::onTimeout(ChannelId channel, std::uint64_t epoch) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Flow& f = flow(channel);
  if (epoch != f.timerEpoch || f.error) return;  // stale timer
  if (f.unacked.empty()) {
    f.timerArmed = false;
    return;
  }
  if (++f.timeoutsInARow > params_.retry_budget) {
    failFlow(channel, WcStatus::kRetryExceeded);
    return;
  }
  // Go-back-N: retransmit the whole unacked window in order.
  const sim::Time now = wire_.wireEngine().now();
  for (Entry& entry : f.unacked) {
    ++retransmits_;
    trace().recordSpan(now, f.src, sim::TraceTag::kRelRetransmit,
                       sim::SpanPhase::kInstant, entry.send.traceId, 0,
                       static_cast<double>(entry.send.wireBytes));
    transmit(channel, entry);
  }
  armTimer(channel);
}

void ReliableLink::failFlow(ChannelId channel, WcStatus status) {
  Flow& f = flow(channel);
  f.error = true;
  ++f.timerEpoch;  // kill any running timer
  f.timerArmed = false;
  // Move the window out before invoking completions: error handlers may
  // resetChannel() and re-post immediately.
  std::deque<Entry> dead;
  dead.swap(f.unacked);
  const sim::Time now = wire_.wireEngine().now();
  for (Entry& entry : dead) {
    ++errors_;
    trace().record(now, f.src, sim::TraceTag::kRelError,
                   static_cast<double>(entry.send.wireBytes));
    CKD_REQUIRE(entry.send.on_error != nullptr,
                "reliable send failed permanently with no error handler");
    entry.send.on_error(status);
  }
}

void ReliableLink::resetChannel(ChannelId channel) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  Flow& f = flow(channel);
  if (!f.error) return;  // already reset by a sibling recovery path
  f.error = false;
  f.timeoutsInARow = 0;
  // Fresh connection, fresh PSN: the receiver resynchronizes its expected
  // sequence to the sender's next (failed entries consumed sequence numbers
  // the receiver never saw).
  f.expected = f.nextSeq;
  ++f.timerEpoch;
  f.timerArmed = false;
  ++f.generation;
  // The old sequence space's delivery estimate dies with the connection: the
  // first post-reset timer must be sized from the new traffic, not from a
  // stale multi-megabyte ETA that would inflate its timeout.
  f.lastEta = 0;
}

void ReliableLink::flushFlow(Flow& f) {
  // Idempotency guard: a second flush of an already-flushed flow (a crash
  // racing a QP-error recovery, or restore's flushAll after a per-PE flush)
  // must be a strict no-op — nothing re-released, generation untouched.
  if (f.unacked.empty() && !f.error && f.flushBarrier == f.nextSeq) return;
  // Silent drop: no error completions. The checkpoint rollback re-drives
  // every send that mattered; firing on_error here would double-count
  // failures (and abort on entries posted without a handler).
  f.unacked.clear();
  f.error = false;
  f.timeoutsInARow = 0;
  f.expected = f.nextSeq;
  f.flushBarrier = f.nextSeq;
  ++f.timerEpoch;  // kill any running timer
  f.timerArmed = false;
  ++f.generation;  // kill stale NAK closures
  f.lastEta = 0;
}

void ReliableLink::flushPe(int pe) {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (auto& [id, f] : flows_)
    if (f.src == pe || f.dst == pe) flushFlow(f);
}

void ReliableLink::flushAll() {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  for (auto& [id, f] : flows_) flushFlow(f);
}

bool ReliableLink::channelInError(ChannelId channel) const {
  std::lock_guard<std::recursive_mutex> lock(mu_);
  const auto it = flows_.find(channel);
  return it != flows_.end() && it->second.error;
}

}  // namespace ckd::fault
