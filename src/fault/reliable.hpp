#pragma once
// Go-back-N reliability over an unreliable simulated wire.
//
// When the fault injector is armed, the wire may drop, delay, duplicate, or
// corrupt messages — so exactly-once in-order delivery (the RC guarantee
// CkDirect's sentinel protocol leans on, §2.1) has to be EARNED. ReliableLink
// models the RC protocol machinery that earns it:
//
//  * every transmission carries a sequence number and an FNV-1a checksum in
//    its simulated wire header; the receiver recomputes the checksum (bit
//    corruption -> silent discard, like a link-level CRC failure) and
//    enforces strict sequencing (duplicates and gap arrivals are discarded,
//    go-back-N style);
//  * in-sequence arrivals are delivered exactly once, then cumulatively
//    acked with a small control message (itself subject to wire faults);
//  * the sender keeps unacked entries in a per-channel retransmission queue
//    guarded by a timeout with exponential backoff; after
//    ReliabilityParams::retry_budget consecutive timeouts (IB retry_cnt)
//    every pending entry completes with WcStatus::kRetryExceeded and the
//    channel enters an error state (a real QP moving to ERROR and flushing
//    its WQEs);
//  * resetChannel() models tearing the connection down and re-establishing
//    it with a fresh PSN — the recovery hook the layers above (transport
//    RDMA retry, CkDirect re-put) use before re-posting.
//
// A "channel" is whatever the caller keys flows by (a QP id, a PE pair);
// entries on one channel share one sequence space, like WQEs on one RC QP.

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string_view>
#include <vector>

#include "fault/fault.hpp"
#include "sim/engine.hpp"
#include "sim/time.hpp"
#include "util/inplace_fn.hpp"

namespace ckd::fault {

/// Work-completion status, modeled on ibv_wc_status.
enum class WcStatus : std::uint8_t {
  kSuccess = 0,
  kRetryExceeded,  ///< IBV_WC_RETRY_EXC_ERR: retry budget exhausted
  kQpError,        ///< posted to (or flushed from) a QP in the error state
  kRemoteAccess,   ///< IBV_WC_REM_ACCESS_ERR: remote region invalid
};

std::string_view wcStatusName(WcStatus status);

/// What the fabric implements so the reliability layer can transmit without
/// this module depending on net::Fabric (which depends on this module).
class WireSender {
 public:
  struct Delivery {
    bool corrupted = false;  ///< injector flipped a bit in this copy
  };
  /// Sized to hold the fabric's wrap of a user delivery closure inline (the
  /// per-message path the pools keep allocation-free); bigger captures fall
  /// back to the heap transparently.
  using DeliverFn = util::InplaceFunction<void(const Delivery&), 88>;

  virtual ~WireSender() = default;
  /// Submit `wireBytes` of modeled traffic; `onDeliver` runs at delivery
  /// (possibly never, on a drop; possibly twice, on a duplicate). Returns
  /// the contention-free delivery estimate. `traceId` stamps the wire-level
  /// trace points with the logical message's causal chain id — retransmitted
  /// copies pass the same id.
  virtual sim::Time sendWire(int srcPe, int dstPe, std::size_t wireBytes,
                             MsgClass cls, DeliverFn onDeliver,
                             std::uint64_t traceId = 0) = 0;
  virtual sim::Engine& wireEngine() = 0;
  /// Installed injector, or nullptr when faults are off.
  virtual FaultInjector* faults() = 0;
};

class ReliableLink {
 public:
  using ChannelId = int;

  struct Send {
    int src = -1;
    int dst = -1;
    std::size_t wireBytes = 0;  ///< modeled wire size (headers included)
    MsgClass cls = MsgClass::kPacket;
    /// Real payload image; may be empty for closure-only messages (control
    /// handshakes) whose effect is entirely in on_deliver.
    std::vector<std::byte> payload;
    /// Runs at the receiver, exactly once, in post order per channel.
    std::function<void(std::vector<std::byte>&&)> on_deliver;
    /// Runs at the sender once the cumulative ack covers this entry.
    std::function<void()> on_acked;
    /// Terminal failure (retry budget, QP error, remote access). Entries
    /// without a handler abort the simulation on failure.
    std::function<void(WcStatus)> on_error;
    /// Causal chain id of the logical message (0 = untraced). Every
    /// transmission attempt — first copy and retransmits alike — carries it.
    std::uint64_t traceId = 0;
  };

  ReliableLink(WireSender& wire, ReliabilityParams params);

  void post(ChannelId channel, Send send);

  /// Recover a channel from the error state (models destroying the QP and
  /// reconnecting with a fresh PSN). No-op on a healthy channel, so layered
  /// recovery paths sharing one QP may all call it.
  void resetChannel(ChannelId channel);
  bool channelInError(ChannelId channel) const;

  /// Fail-stop flush: forcibly tear down every flow touching `pe`. In-flight
  /// entries are dropped SILENTLY — no error completions fire, because the
  /// checkpoint rollback re-drives those sends from restored state — the
  /// sequence spaces resynchronize, and any copy of a pre-flush transmission
  /// still on the wire is NAKed as stale on arrival instead of delivered
  /// into since-re-registered memory. Idempotent: flushing an already-clean
  /// flow (crash racing a QP-error recovery that already reset it) is a
  /// strict no-op — nothing is double-released and the generation is stable.
  void flushPe(int pe);
  /// Flush every flow (global rollback to the last checkpoint).
  void flushAll();

  std::uint64_t retransmits() const { return retransmits_; }
  std::uint64_t errors() const { return errors_; }
  /// Pre-flush-epoch arrivals NAKed instead of delivered.
  std::uint64_t staleNaks() const { return staleNaks_; }

 private:
  struct Entry {
    std::uint64_t seq = 0;
    Send send;
    std::uint64_t sum = 0;       ///< checksum over the payload image
    bool regionInvalid = false;  ///< injected: receiver will NAK this entry
    int attempts = 0;            ///< transmissions so far
  };
  struct Flow {
    int src = -1;
    int dst = -1;
    std::uint64_t nextSeq = 0;   // sender side
    std::uint64_t expected = 0;  // receiver side
    std::deque<Entry> unacked;
    bool error = false;
    int timeoutsInARow = 0;
    std::uint64_t timerEpoch = 0;  // stale-timer guard (engine has no cancel)
    bool timerArmed = false;
    std::uint64_t generation = 0;  // bumped per reset; kills stale NAKs
    /// Sequences below this were flushed by a fail-stop teardown; copies
    /// still on the wire are NAKed as stale when they arrive.
    std::uint64_t flushBarrier = 0;
    /// Contention-free delivery estimate of the latest transmission, as an
    /// absolute engine time. The retransmission timer must not fire before
    /// the outstanding copy could possibly have been delivered and acked —
    /// a real QP sizes its local ACK timeout from the path round trip, so
    /// a multi-megabyte write is not declared lost on a packet-scale timer.
    sim::Time lastEta = 0;
  };

  Flow& flow(ChannelId channel) { return flows_[channel]; }
  void flushFlow(Flow& f);
  void transmit(ChannelId channel, Entry& entry);
  void onWireArrival(ChannelId channel, std::uint64_t seq, std::uint64_t sum,
                     bool regionInvalid, std::vector<std::byte> image,
                     bool corrupted);
  void sendAck(ChannelId channel);
  void onAck(ChannelId channel, std::uint64_t through);
  void armTimer(ChannelId channel);
  void onTimeout(ChannelId channel, std::uint64_t epoch);
  void failFlow(ChannelId channel, WcStatus status);

  sim::TraceRecorder& trace() { return wire_.wireEngine().trace(); }

  WireSender& wire_;
  ReliabilityParams params_;
  /// A flow spans two PEs, so under the sharded engine its sender side
  /// (post, ack, timeout) and receiver side (wire arrival, ack send) run on
  /// different threads — at distinct virtual instants, but physically
  /// concurrent within one window. One lock serializes all flow/counter
  /// mutation; recursive because failure handlers re-enter (on_error ->
  /// resetChannel -> post). The operations commute across flows and look up
  /// entries by sequence number, so lock-acquisition order cannot change any
  /// simulation-visible result.
  mutable std::recursive_mutex mu_;
  std::map<ChannelId, Flow> flows_;
  std::uint64_t retransmits_ = 0;
  std::uint64_t errors_ = 0;
  std::uint64_t staleNaks_ = 0;
};

}  // namespace ckd::fault
