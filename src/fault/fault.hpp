#pragma once
// Deterministic fault injection for the simulated wire.
//
// A FaultPlan is a list of seeded, matchable rules: each rule names a fault
// kind (drop, delay jitter, duplicate, bit corruption, QP error, remote
// region invalidation), a firing condition (a probability, or every nth
// matching message), and optional src/dst/message-class filters. The plan is
// interpreted by a FaultInjector, which owns one util::Rng seeded from the
// plan seed — the whole fault schedule is therefore a pure function of
// (seed, plan, event order), and the simulation replays bit-identically.
//
// Layering: this module sits BELOW net::Fabric (it knows nothing about
// XferKind or topologies). The fabric translates its transfer classes into
// MsgClass and consults decideWire() at every inter-node submit; the verbs /
// DCMF layers consult decideLink() at post time for the link-level faults
// (QP error, region invalidation) that never touch the wire.
//
// When no plan is installed (or the plan is unarmed) none of this code runs:
// the fabric keeps a null injector pointer and takes its legacy paths
// verbatim, so a fault-free build costs nothing and stays bit-identical.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace ckd::fault {

/// Coarse message classes a rule can filter on. The fabric maps its
/// XferKind / occupiesPorts notions onto these.
enum class MsgClass : std::uint8_t {
  kBulk = 0,  ///< port-occupying bulk transfer (RDMA payload)
  kPacket,    ///< two-sided packetized message (eager, DCMF send)
  kControl,   ///< tiny control message (handshakes, acks)
  kAny,       ///< rule filter wildcard
};

std::string_view msgClassName(MsgClass cls);

enum class FaultKind : std::uint8_t {
  kDrop = 0,          ///< wire message silently lost
  kDelay,             ///< extra latency added to the delivery
  kDuplicate,         ///< a ghost copy of the delivery arrives late
  kCorrupt,           ///< payload bit flipped in flight (caught by checksum)
  kQpError,           ///< queue pair fails at post time (flushes the flow)
  kRegionInvalidate,  ///< remote region yanked; receiver NAKs remote-access
  kPeCrash,           ///< fail-stop: a PE dies at a chosen virtual time
  kCount,
};

constexpr std::size_t kFaultKindCount = static_cast<std::size_t>(FaultKind::kCount);

std::string_view faultKindName(FaultKind kind);

struct FaultRule {
  FaultKind kind = FaultKind::kDrop;
  /// Chance in [0,1] that the rule fires on a matching message.
  double probability = 0.0;
  /// If > 0, fire deterministically on every nth matching message (1-based)
  /// instead of drawing from the RNG.
  std::uint64_t nth = 0;
  /// Filters; -1 matches any PE.
  int src = -1;
  int dst = -1;
  MsgClass cls = MsgClass::kAny;
  /// Extra latency injected by kDelay rules.
  sim::Time delay_us = 5.0;
  /// kPeCrash only: virtual time the victim PE dies. `src` names the victim
  /// (-1 = runtime picks one from the fault seed). Crash rules are scheduled
  /// up front by the checkpoint manager, never drawn per message.
  sim::Time crash_at_us = -1.0;
};

/// Knobs for the go-back-N reliability layer that absorbs the faults
/// (modeled on IB RC timeouts: local_ack_timeout, retry_cnt).
struct ReliabilityParams {
  sim::Time timeout_us = 40.0;  ///< base retransmission timeout
  double backoff = 2.0;         ///< exponential backoff per consecutive timeout
  int retry_budget = 7;         ///< timeouts before WC_RETRY_EXC (IB retry_cnt)
  int app_retry_budget = 3;     ///< re-issues above the link (CkDirect re-put)
};

struct FaultPlan {
  std::vector<FaultRule> rules;
  ReliabilityParams rel;

  /// True when any rule can ever fire. Unarmed plans install nothing.
  bool armed() const;
  /// True when the plan contains at least one kPeCrash rule (fail-stop
  /// tolerance machinery — checkpointing, heartbeats — is only spun up then).
  bool hasCrashes() const;
  /// One-line human-readable description (bench banners).
  std::string summary() const;
};

/// Parse a fault spec string. Grammar (comma-separated rules):
///
///   spec   := rule ("," rule)*
///   rule   := name ":" rate (";" opt)*
///           | "pe_crash@" time_us (";" opt)*   (fail-stop at a virtual time)
///   name   := drop | delay | duplicate | corrupt | qp_error | region_invalid
///             | rel            (pseudo-rule: sets ReliabilityParams)
///   rate   := probability in [0,1]
///   opt    := src=<pe> | dst=<pe> | class=bulk|packet|control
///             | nth=<n> | jitter=<us> | pe=<n>  (pe: crash victim)
///   rel opts := timeout=<us> | backoff=<x> | budget=<n> | appbudget=<n>
///
/// A crash rule with no pe= option leaves the victim to the runtime, which
/// picks one deterministically from the fault seed.
///
/// Example: "drop:0.01,corrupt:0.005;class=bulk,delay:0.02;jitter=8".
/// Empty string -> unarmed plan. Aborts (CKD_REQUIRE) on malformed specs.
FaultPlan parseFaultSpec(const std::string& spec);

/// FNV-1a 64-bit checksum; the simulated wire format's per-message CRC.
std::uint64_t checksum(const std::byte* data, std::size_t len);

/// Wire-level fault decision for one submit.
struct WireFault {
  bool drop = false;
  bool duplicate = false;
  bool corrupt = false;
  sim::Time extra_delay_us = 0.0;
};

/// Link-level fault decision for one posted work request.
struct LinkFault {
  bool qp_error = false;
  bool region_invalidate = false;
};

class FaultInjector {
 public:
  FaultInjector(FaultPlan plan, std::uint64_t seed, sim::TraceRecorder& trace);

  bool armed() const { return armed_; }
  const FaultPlan& plan() const { return plan_; }

  /// Consulted by the fabric for every inter-node submit. Draws from the
  /// injector RNG in rule order (deterministic given event order), records
  /// fault trace tags, and bumps the per-kind counters.
  WireFault decideWire(sim::Time now, int src, int dst, std::size_t bytes,
                       MsgClass cls);

  /// Consulted by the verbs/DCMF layers when a work request is posted.
  LinkFault decideLink(sim::Time now, int src, int dst, MsgClass cls);

  std::uint64_t count(FaultKind kind) const {
    return counts_[static_cast<std::size_t>(kind)];
  }

 private:
  bool fires(FaultRule& rule, std::uint64_t& matched, int src, int dst,
             MsgClass cls);

  FaultPlan plan_;
  std::vector<std::uint64_t> matched_;  // per-rule nth counters
  util::Rng rng_;
  sim::TraceRecorder& trace_;
  bool armed_ = false;
  std::array<std::uint64_t, kFaultKindCount> counts_{};
};

}  // namespace ckd::fault
