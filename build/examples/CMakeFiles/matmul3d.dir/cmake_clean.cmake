file(REMOVE_RECURSE
  "CMakeFiles/matmul3d.dir/matmul3d.cpp.o"
  "CMakeFiles/matmul3d.dir/matmul3d.cpp.o.d"
  "matmul3d"
  "matmul3d.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul3d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
