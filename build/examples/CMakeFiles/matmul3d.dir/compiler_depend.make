# Empty compiler generated dependencies file for matmul3d.
# This may be replaced when dependencies are built.
