# Empty compiler generated dependencies file for openatom_mini.
# This may be replaced when dependencies are built.
