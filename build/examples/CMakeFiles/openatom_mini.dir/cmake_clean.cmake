file(REMOVE_RECURSE
  "CMakeFiles/openatom_mini.dir/openatom_mini.cpp.o"
  "CMakeFiles/openatom_mini.dir/openatom_mini.cpp.o.d"
  "openatom_mini"
  "openatom_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/openatom_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
