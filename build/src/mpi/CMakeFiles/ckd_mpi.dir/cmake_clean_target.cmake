file(REMOVE_RECURSE
  "libckd_mpi.a"
)
