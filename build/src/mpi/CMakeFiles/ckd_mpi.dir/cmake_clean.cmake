file(REMOVE_RECURSE
  "CMakeFiles/ckd_mpi.dir/mini_mpi.cpp.o"
  "CMakeFiles/ckd_mpi.dir/mini_mpi.cpp.o.d"
  "CMakeFiles/ckd_mpi.dir/mpi_costs.cpp.o"
  "CMakeFiles/ckd_mpi.dir/mpi_costs.cpp.o.d"
  "libckd_mpi.a"
  "libckd_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckd_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
