# Empty dependencies file for ckd_mpi.
# This may be replaced when dependencies are built.
