file(REMOVE_RECURSE
  "libckd_harness.a"
)
