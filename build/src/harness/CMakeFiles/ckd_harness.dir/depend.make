# Empty dependencies file for ckd_harness.
# This may be replaced when dependencies are built.
