file(REMOVE_RECURSE
  "CMakeFiles/ckd_harness.dir/machines.cpp.o"
  "CMakeFiles/ckd_harness.dir/machines.cpp.o.d"
  "CMakeFiles/ckd_harness.dir/pingpong.cpp.o"
  "CMakeFiles/ckd_harness.dir/pingpong.cpp.o.d"
  "CMakeFiles/ckd_harness.dir/profile.cpp.o"
  "CMakeFiles/ckd_harness.dir/profile.cpp.o.d"
  "libckd_harness.a"
  "libckd_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckd_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
