# Empty compiler generated dependencies file for ckd_util.
# This may be replaced when dependencies are built.
