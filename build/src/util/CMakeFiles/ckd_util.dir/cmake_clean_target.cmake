file(REMOVE_RECURSE
  "libckd_util.a"
)
