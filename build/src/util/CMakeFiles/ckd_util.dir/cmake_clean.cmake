file(REMOVE_RECURSE
  "CMakeFiles/ckd_util.dir/args.cpp.o"
  "CMakeFiles/ckd_util.dir/args.cpp.o.d"
  "CMakeFiles/ckd_util.dir/logging.cpp.o"
  "CMakeFiles/ckd_util.dir/logging.cpp.o.d"
  "CMakeFiles/ckd_util.dir/stats.cpp.o"
  "CMakeFiles/ckd_util.dir/stats.cpp.o.d"
  "CMakeFiles/ckd_util.dir/table.cpp.o"
  "CMakeFiles/ckd_util.dir/table.cpp.o.d"
  "libckd_util.a"
  "libckd_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckd_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
