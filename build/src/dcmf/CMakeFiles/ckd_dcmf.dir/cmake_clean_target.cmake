file(REMOVE_RECURSE
  "libckd_dcmf.a"
)
