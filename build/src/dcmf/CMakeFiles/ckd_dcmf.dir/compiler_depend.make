# Empty compiler generated dependencies file for ckd_dcmf.
# This may be replaced when dependencies are built.
