file(REMOVE_RECURSE
  "CMakeFiles/ckd_dcmf.dir/dcmf.cpp.o"
  "CMakeFiles/ckd_dcmf.dir/dcmf.cpp.o.d"
  "libckd_dcmf.a"
  "libckd_dcmf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckd_dcmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
