file(REMOVE_RECURSE
  "libckd_ib.a"
)
