file(REMOVE_RECURSE
  "CMakeFiles/ckd_ib.dir/verbs.cpp.o"
  "CMakeFiles/ckd_ib.dir/verbs.cpp.o.d"
  "libckd_ib.a"
  "libckd_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckd_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
