
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ib/verbs.cpp" "src/ib/CMakeFiles/ckd_ib.dir/verbs.cpp.o" "gcc" "src/ib/CMakeFiles/ckd_ib.dir/verbs.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ckd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ckd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ckd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ckd_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
