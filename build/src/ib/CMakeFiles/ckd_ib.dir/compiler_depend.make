# Empty compiler generated dependencies file for ckd_ib.
# This may be replaced when dependencies are built.
