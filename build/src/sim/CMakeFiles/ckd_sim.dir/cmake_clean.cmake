file(REMOVE_RECURSE
  "CMakeFiles/ckd_sim.dir/engine.cpp.o"
  "CMakeFiles/ckd_sim.dir/engine.cpp.o.d"
  "CMakeFiles/ckd_sim.dir/processor.cpp.o"
  "CMakeFiles/ckd_sim.dir/processor.cpp.o.d"
  "CMakeFiles/ckd_sim.dir/trace.cpp.o"
  "CMakeFiles/ckd_sim.dir/trace.cpp.o.d"
  "libckd_sim.a"
  "libckd_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckd_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
