# Empty dependencies file for ckd_sim.
# This may be replaced when dependencies are built.
