file(REMOVE_RECURSE
  "libckd_sim.a"
)
