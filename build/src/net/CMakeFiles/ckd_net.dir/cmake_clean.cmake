file(REMOVE_RECURSE
  "CMakeFiles/ckd_net.dir/cost_params.cpp.o"
  "CMakeFiles/ckd_net.dir/cost_params.cpp.o.d"
  "CMakeFiles/ckd_net.dir/fabric.cpp.o"
  "CMakeFiles/ckd_net.dir/fabric.cpp.o.d"
  "libckd_net.a"
  "libckd_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckd_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
