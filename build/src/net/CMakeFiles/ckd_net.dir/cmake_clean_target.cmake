file(REMOVE_RECURSE
  "libckd_net.a"
)
