# Empty compiler generated dependencies file for ckd_net.
# This may be replaced when dependencies are built.
