file(REMOVE_RECURSE
  "libckd_direct.a"
)
