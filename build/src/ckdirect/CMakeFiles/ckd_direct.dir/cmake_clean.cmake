file(REMOVE_RECURSE
  "CMakeFiles/ckd_direct.dir/ckdirect.cpp.o"
  "CMakeFiles/ckd_direct.dir/ckdirect.cpp.o.d"
  "CMakeFiles/ckd_direct.dir/manager_bgp.cpp.o"
  "CMakeFiles/ckd_direct.dir/manager_bgp.cpp.o.d"
  "CMakeFiles/ckd_direct.dir/manager_ib.cpp.o"
  "CMakeFiles/ckd_direct.dir/manager_ib.cpp.o.d"
  "libckd_direct.a"
  "libckd_direct.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckd_direct.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
