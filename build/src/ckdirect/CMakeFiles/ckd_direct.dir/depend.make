# Empty dependencies file for ckd_direct.
# This may be replaced when dependencies are built.
