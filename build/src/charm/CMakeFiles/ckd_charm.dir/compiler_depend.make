# Empty compiler generated dependencies file for ckd_charm.
# This may be replaced when dependencies are built.
