
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/charm/costs.cpp" "src/charm/CMakeFiles/ckd_charm.dir/costs.cpp.o" "gcc" "src/charm/CMakeFiles/ckd_charm.dir/costs.cpp.o.d"
  "/root/repo/src/charm/message.cpp" "src/charm/CMakeFiles/ckd_charm.dir/message.cpp.o" "gcc" "src/charm/CMakeFiles/ckd_charm.dir/message.cpp.o.d"
  "/root/repo/src/charm/runtime.cpp" "src/charm/CMakeFiles/ckd_charm.dir/runtime.cpp.o" "gcc" "src/charm/CMakeFiles/ckd_charm.dir/runtime.cpp.o.d"
  "/root/repo/src/charm/scheduler.cpp" "src/charm/CMakeFiles/ckd_charm.dir/scheduler.cpp.o" "gcc" "src/charm/CMakeFiles/ckd_charm.dir/scheduler.cpp.o.d"
  "/root/repo/src/charm/transport.cpp" "src/charm/CMakeFiles/ckd_charm.dir/transport.cpp.o" "gcc" "src/charm/CMakeFiles/ckd_charm.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ckd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ckd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ckd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/ckd_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/dcmf/CMakeFiles/ckd_dcmf.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ckd_topo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
