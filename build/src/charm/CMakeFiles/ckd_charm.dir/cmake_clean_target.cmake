file(REMOVE_RECURSE
  "libckd_charm.a"
)
