file(REMOVE_RECURSE
  "CMakeFiles/ckd_charm.dir/costs.cpp.o"
  "CMakeFiles/ckd_charm.dir/costs.cpp.o.d"
  "CMakeFiles/ckd_charm.dir/message.cpp.o"
  "CMakeFiles/ckd_charm.dir/message.cpp.o.d"
  "CMakeFiles/ckd_charm.dir/runtime.cpp.o"
  "CMakeFiles/ckd_charm.dir/runtime.cpp.o.d"
  "CMakeFiles/ckd_charm.dir/scheduler.cpp.o"
  "CMakeFiles/ckd_charm.dir/scheduler.cpp.o.d"
  "CMakeFiles/ckd_charm.dir/transport.cpp.o"
  "CMakeFiles/ckd_charm.dir/transport.cpp.o.d"
  "libckd_charm.a"
  "libckd_charm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckd_charm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
