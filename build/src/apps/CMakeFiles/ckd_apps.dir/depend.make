# Empty dependencies file for ckd_apps.
# This may be replaced when dependencies are built.
