file(REMOVE_RECURSE
  "CMakeFiles/ckd_apps.dir/matmul/matmul.cpp.o"
  "CMakeFiles/ckd_apps.dir/matmul/matmul.cpp.o.d"
  "CMakeFiles/ckd_apps.dir/openatom/openatom.cpp.o"
  "CMakeFiles/ckd_apps.dir/openatom/openatom.cpp.o.d"
  "CMakeFiles/ckd_apps.dir/stencil/stencil.cpp.o"
  "CMakeFiles/ckd_apps.dir/stencil/stencil.cpp.o.d"
  "libckd_apps.a"
  "libckd_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckd_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
