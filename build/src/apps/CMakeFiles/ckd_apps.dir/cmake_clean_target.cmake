file(REMOVE_RECURSE
  "libckd_apps.a"
)
