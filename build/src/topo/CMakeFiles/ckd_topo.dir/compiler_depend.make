# Empty compiler generated dependencies file for ckd_topo.
# This may be replaced when dependencies are built.
