file(REMOVE_RECURSE
  "CMakeFiles/ckd_topo.dir/fat_tree.cpp.o"
  "CMakeFiles/ckd_topo.dir/fat_tree.cpp.o.d"
  "CMakeFiles/ckd_topo.dir/topology.cpp.o"
  "CMakeFiles/ckd_topo.dir/topology.cpp.o.d"
  "CMakeFiles/ckd_topo.dir/torus3d.cpp.o"
  "CMakeFiles/ckd_topo.dir/torus3d.cpp.o.d"
  "libckd_topo.a"
  "libckd_topo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ckd_topo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
