file(REMOVE_RECURSE
  "libckd_topo.a"
)
