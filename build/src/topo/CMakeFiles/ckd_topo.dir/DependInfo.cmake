
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/topo/fat_tree.cpp" "src/topo/CMakeFiles/ckd_topo.dir/fat_tree.cpp.o" "gcc" "src/topo/CMakeFiles/ckd_topo.dir/fat_tree.cpp.o.d"
  "/root/repo/src/topo/topology.cpp" "src/topo/CMakeFiles/ckd_topo.dir/topology.cpp.o" "gcc" "src/topo/CMakeFiles/ckd_topo.dir/topology.cpp.o.d"
  "/root/repo/src/topo/torus3d.cpp" "src/topo/CMakeFiles/ckd_topo.dir/torus3d.cpp.o" "gcc" "src/topo/CMakeFiles/ckd_topo.dir/torus3d.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ckd_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ckd_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
