# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_util[1]_include.cmake")
include("/root/repo/build/tests/test_sim[1]_include.cmake")
include("/root/repo/build/tests/test_net[1]_include.cmake")
include("/root/repo/build/tests/test_ib[1]_include.cmake")
include("/root/repo/build/tests/test_dcmf[1]_include.cmake")
include("/root/repo/build/tests/test_charm[1]_include.cmake")
include("/root/repo/build/tests/test_ckdirect[1]_include.cmake")
include("/root/repo/build/tests/test_mpi[1]_include.cmake")
include("/root/repo/build/tests/test_stencil[1]_include.cmake")
include("/root/repo/build/tests/test_matmul[1]_include.cmake")
include("/root/repo/build/tests/test_openatom[1]_include.cmake")
include("/root/repo/build/tests/test_calibration[1]_include.cmake")
include("/root/repo/build/tests/test_property[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_transport[1]_include.cmake")
include("/root/repo/build/tests/test_harness[1]_include.cmake")
include("/root/repo/build/tests/test_apps_sweep[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
