
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/extensions_test.cpp" "tests/CMakeFiles/test_extensions.dir/extensions_test.cpp.o" "gcc" "tests/CMakeFiles/test_extensions.dir/extensions_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/apps/CMakeFiles/ckd_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/harness/CMakeFiles/ckd_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/ckdirect/CMakeFiles/ckd_direct.dir/DependInfo.cmake"
  "/root/repo/build/src/charm/CMakeFiles/ckd_charm.dir/DependInfo.cmake"
  "/root/repo/build/src/ib/CMakeFiles/ckd_ib.dir/DependInfo.cmake"
  "/root/repo/build/src/dcmf/CMakeFiles/ckd_dcmf.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/ckd_mpi.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/ckd_net.dir/DependInfo.cmake"
  "/root/repo/build/src/topo/CMakeFiles/ckd_topo.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ckd_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ckd_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
