# Empty dependencies file for test_apps_sweep.
# This may be replaced when dependencies are built.
