# Empty dependencies file for test_dcmf.
# This may be replaced when dependencies are built.
