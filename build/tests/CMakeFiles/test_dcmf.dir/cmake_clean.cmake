file(REMOVE_RECURSE
  "CMakeFiles/test_dcmf.dir/dcmf_test.cpp.o"
  "CMakeFiles/test_dcmf.dir/dcmf_test.cpp.o.d"
  "test_dcmf"
  "test_dcmf.pdb"
  "test_dcmf[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dcmf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
