file(REMOVE_RECURSE
  "CMakeFiles/test_ckdirect.dir/ckdirect_test.cpp.o"
  "CMakeFiles/test_ckdirect.dir/ckdirect_test.cpp.o.d"
  "test_ckdirect"
  "test_ckdirect.pdb"
  "test_ckdirect[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ckdirect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
