# Empty compiler generated dependencies file for test_ckdirect.
# This may be replaced when dependencies are built.
