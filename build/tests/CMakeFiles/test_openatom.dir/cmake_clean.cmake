file(REMOVE_RECURSE
  "CMakeFiles/test_openatom.dir/openatom_test.cpp.o"
  "CMakeFiles/test_openatom.dir/openatom_test.cpp.o.d"
  "test_openatom"
  "test_openatom.pdb"
  "test_openatom[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_openatom.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
