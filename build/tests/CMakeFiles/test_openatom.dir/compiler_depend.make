# Empty compiler generated dependencies file for test_openatom.
# This may be replaced when dependencies are built.
