file(REMOVE_RECURSE
  "CMakeFiles/fig2a_stencil_ib.dir/fig2_stencil.cpp.o"
  "CMakeFiles/fig2a_stencil_ib.dir/fig2_stencil.cpp.o.d"
  "fig2a_stencil_ib"
  "fig2a_stencil_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2a_stencil_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
