# Empty compiler generated dependencies file for fig2a_stencil_ib.
# This may be replaced when dependencies are built.
