# Empty compiler generated dependencies file for table2_pingpong_bgp.
# This may be replaced when dependencies are built.
