file(REMOVE_RECURSE
  "CMakeFiles/table2_pingpong_bgp.dir/table2_pingpong_bgp.cpp.o"
  "CMakeFiles/table2_pingpong_bgp.dir/table2_pingpong_bgp.cpp.o.d"
  "table2_pingpong_bgp"
  "table2_pingpong_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_pingpong_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
