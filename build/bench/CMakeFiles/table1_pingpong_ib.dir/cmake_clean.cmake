file(REMOVE_RECURSE
  "CMakeFiles/table1_pingpong_ib.dir/table1_pingpong_ib.cpp.o"
  "CMakeFiles/table1_pingpong_ib.dir/table1_pingpong_ib.cpp.o.d"
  "table1_pingpong_ib"
  "table1_pingpong_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_pingpong_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
