# Empty dependencies file for table1_pingpong_ib.
# This may be replaced when dependencies are built.
