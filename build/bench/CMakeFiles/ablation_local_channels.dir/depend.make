# Empty dependencies file for ablation_local_channels.
# This may be replaced when dependencies are built.
