file(REMOVE_RECURSE
  "CMakeFiles/ablation_local_channels.dir/ablation_local_channels.cpp.o"
  "CMakeFiles/ablation_local_channels.dir/ablation_local_channels.cpp.o.d"
  "ablation_local_channels"
  "ablation_local_channels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_local_channels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
