file(REMOVE_RECURSE
  "CMakeFiles/fig2b_stencil_bgp.dir/fig2_stencil.cpp.o"
  "CMakeFiles/fig2b_stencil_bgp.dir/fig2_stencil.cpp.o.d"
  "fig2b_stencil_bgp"
  "fig2b_stencil_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2b_stencil_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
