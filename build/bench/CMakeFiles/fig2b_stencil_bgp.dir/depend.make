# Empty dependencies file for fig2b_stencil_bgp.
# This may be replaced when dependencies are built.
