# Empty dependencies file for fig4_openatom_ib.
# This may be replaced when dependencies are built.
