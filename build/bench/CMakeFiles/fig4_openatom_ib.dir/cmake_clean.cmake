file(REMOVE_RECURSE
  "CMakeFiles/fig4_openatom_ib.dir/fig45_openatom.cpp.o"
  "CMakeFiles/fig4_openatom_ib.dir/fig45_openatom.cpp.o.d"
  "fig4_openatom_ib"
  "fig4_openatom_ib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_openatom_ib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
