# Empty compiler generated dependencies file for ablation_readymark.
# This may be replaced when dependencies are built.
