file(REMOVE_RECURSE
  "CMakeFiles/ablation_readymark.dir/ablation_readymark.cpp.o"
  "CMakeFiles/ablation_readymark.dir/ablation_readymark.cpp.o.d"
  "ablation_readymark"
  "ablation_readymark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_readymark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
