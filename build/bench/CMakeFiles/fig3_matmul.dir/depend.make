# Empty dependencies file for fig3_matmul.
# This may be replaced when dependencies are built.
