file(REMOVE_RECURSE
  "CMakeFiles/fig3_matmul.dir/fig3_matmul.cpp.o"
  "CMakeFiles/fig3_matmul.dir/fig3_matmul.cpp.o.d"
  "fig3_matmul"
  "fig3_matmul.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_matmul.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
