file(REMOVE_RECURSE
  "CMakeFiles/fig5_openatom_bgp.dir/fig45_openatom.cpp.o"
  "CMakeFiles/fig5_openatom_bgp.dir/fig45_openatom.cpp.o.d"
  "fig5_openatom_bgp"
  "fig5_openatom_bgp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_openatom_bgp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
