# Empty compiler generated dependencies file for fig5_openatom_bgp.
# This may be replaced when dependencies are built.
